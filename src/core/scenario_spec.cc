#include "core/scenario_spec.h"

#include <algorithm>
#include <charconv>
#include <cstdio>
#include <fstream>
#include <functional>
#include <set>
#include <sstream>
#include <unordered_set>
#include <utility>

namespace bgpolicy::core {

// ------------------------------------------------------------- SpecError --

namespace {

std::string format_error(const std::string& source, SourceLoc loc,
                         const std::string& message) {
  return source + ":" + std::to_string(loc.line) + ":" +
         std::to_string(loc.column) + ": " + message;
}

}  // namespace

SpecError::SpecError(std::string source, SourceLoc loc, std::string message)
    : std::runtime_error(format_error(source, loc, message)),
      source_(std::move(source)),
      loc_(loc),
      message_(std::move(message)) {}

// ------------------------------------------------------------- tokenizer --

namespace {

struct Tok {
  std::string_view text;
  SourceLoc loc;
};

/// Splits one line into whitespace-separated tokens; `{` and `}` are
/// always standalone tokens, `#` starts a comment.  Columns are 1-based.
std::vector<Tok> tokenize(std::string_view line, std::size_t line_no) {
  std::vector<Tok> toks;
  std::size_t i = 0;
  while (i < line.size()) {
    const char c = line[i];
    if (c == ' ' || c == '\t' || c == '\r') {
      ++i;
      continue;
    }
    if (c == '#') break;
    if (c == '{' || c == '}') {
      toks.push_back({line.substr(i, 1), {line_no, i + 1}});
      ++i;
      continue;
    }
    std::size_t end = i;
    while (end < line.size() && line[end] != ' ' && line[end] != '\t' &&
           line[end] != '\r' && line[end] != '#' && line[end] != '{' &&
           line[end] != '}') {
      ++end;
    }
    toks.push_back({line.substr(i, end - i), {line_no, i + 1}});
    i = end;
  }
  return toks;
}

/// Shortest round-trip decimal form of a double (dump uses this so
/// parse(dump()) is lossless).
std::string format_double(double value) {
  char buf[64];
  const auto res = std::to_chars(buf, buf + sizeof(buf), value);
  return std::string(buf, res.ptr);
}

void make_policy_inert(sim::PolicyGenParams& p) {
  p.atypical_neighbor_prob = 0.0;
  p.te_as_prob = 0.0;
  p.te_prefix_max_rate = 0.0;
  p.origin_selective_as_prob = 0.0;
  p.withhold_prefix_prob = 0.0;
  p.single_announce_prob = 0.0;
  p.community_flavor_prob = 0.0;
  p.community_target_prob = 0.0;
  p.prepend_as_prob = 0.0;
  p.intermediate_selective_prob = 0.0;
  p.intermediate_victim_prob = 0.0;
  p.splitting_as_prob = 0.0;
  p.aggregation_prob = 0.0;
  p.peer_withhold_prob = 0.0;
  p.peer_withhold_total_prob = 0.0;
  p.tagging_as_prob = 0.0;
  p.publish_prob = 0.0;
  p.force_tagging.clear();
}

// ---------------------------------------------------------------- parser --

class Parser {
 public:
  Parser(std::string_view text, std::string source_name)
      : text_(text), source_(std::move(source_name)) {
    spec_.source = source_;
  }

  ScenarioSpec run() {
    parse_lines();
    finalize();
    return std::move(spec_);
  }

 private:
  using Assign = std::function<void(Scenario&)>;

  [[noreturn]] void fail(SourceLoc loc, const std::string& message) const {
    throw SpecError(source_, loc, message);
  }

  /// Location just past the final token of `toks` — where a missing
  /// trailing value would have been.
  static SourceLoc after(const std::vector<Tok>& toks) {
    const Tok& last = toks.back();
    return {last.loc.line, last.loc.column + last.text.size()};
  }

  // ---- value parsers --------------------------------------------------

  std::uint64_t parse_u64(const Tok& tok) const {
    std::uint64_t value = 0;
    const char* begin = tok.text.data();
    const char* end = begin + tok.text.size();
    const auto res = std::from_chars(begin, end, value);
    if (res.ec != std::errc{} || res.ptr != end) {
      fail(tok.loc, "expected an unsigned integer, got '" +
                        std::string(tok.text) + "'");
    }
    return value;
  }

  std::uint32_t parse_u32(const Tok& tok) const {
    const std::uint64_t value = parse_u64(tok);
    if (value > 0xFFFFFFFFull) {
      fail(tok.loc, "value " + std::string(tok.text) + " out of 32-bit range");
    }
    return static_cast<std::uint32_t>(value);
  }

  std::uint32_t parse_as(const Tok& tok) const {
    const std::uint32_t value = parse_u32(tok);
    if (value == 0) fail(tok.loc, "AS number must be positive");
    return value;
  }

  double parse_double(const Tok& tok) const {
    double value = 0.0;
    const char* begin = tok.text.data();
    const char* end = begin + tok.text.size();
    const auto res = std::from_chars(begin, end, value);
    if (res.ec != std::errc{} || res.ptr != end) {
      fail(tok.loc, "expected a number, got '" + std::string(tok.text) + "'");
    }
    return value;
  }

  double parse_prob(const Tok& tok) const {
    const double value = parse_double(tok);
    if (value < 0.0 || value > 1.0) {
      fail(tok.loc,
           "probability " + std::string(tok.text) + " outside [0, 1]");
    }
    return value;
  }

  double parse_pct(const Tok& tok) const {
    const double value = parse_double(tok);
    if (value < 0.0 || value > 100.0) {
      fail(tok.loc, "percentage " + std::string(tok.text) +
                        " outside [0, 100]");
    }
    return value;
  }

  double parse_nonneg(const Tok& tok) const {
    const double value = parse_double(tok);
    if (value < 0.0) {
      fail(tok.loc, "value " + std::string(tok.text) + " must be >= 0");
    }
    return value;
  }

  bgp::Prefix parse_prefix(const Tok& tok) const {
    const auto prefix = bgp::Prefix::try_parse(tok.text);
    if (!prefix) {
      fail(tok.loc, "malformed prefix '" + std::string(tok.text) +
                        "' (expected a.b.c.d/len)");
    }
    return *prefix;
  }

  topo::Tier parse_tier(const Tok& tok) const {
    if (tok.text == "tier1") return topo::Tier::kTier1;
    if (tok.text == "tier2") return topo::Tier::kTier2;
    if (tok.text == "tier3") return topo::Tier::kTier3;
    if (tok.text == "stub") return topo::Tier::kStub;
    fail(tok.loc, "unknown tier '" + std::string(tok.text) +
                      "' (expected tier1|tier2|tier3|stub)");
  }

  bool parse_on_off(const Tok& tok) const {
    if (tok.text == "on") return true;
    if (tok.text == "off") return false;
    fail(tok.loc,
         "expected on|off, got '" + std::string(tok.text) + "'");
  }

  Stage parse_stage(const Tok& tok) const {
    if (tok.text == "synthesize") return Stage::kSynthesize;
    if (tok.text == "simulate") return Stage::kSimulate;
    if (tok.text == "observe") return Stage::kObserve;
    if (tok.text == "infer") return Stage::kInfer;
    if (tok.text == "analyze") return Stage::kAnalyze;
    fail(tok.loc, "unknown stage '" + std::string(tok.text) +
                      "' (expected synthesize|simulate|observe|infer|analyze)");
  }

  // ---- line-shape helpers ---------------------------------------------

  void need_args(const std::vector<Tok>& toks, std::size_t count) const {
    if (toks.size() < 1 + count) {
      fail(after(toks), "'" + std::string(toks[0].text) + "' expects " +
                            std::to_string(count) + " argument(s)");
    }
    if (toks.size() > 1 + count) {
      fail(toks[1 + count].loc, "unexpected trailing token '" +
                                    std::string(toks[1 + count].text) + "'");
    }
  }

  /// Marks a scalar key as seen in `block`; duplicate = error.
  void scalar_key(const std::string& block, const Tok& key) {
    if (!seen_keys_[block].insert(std::string(key.text)).second) {
      fail(key.loc, "duplicate key '" + std::string(key.text) + "' in " +
                        block + " block");
    }
  }

  /// A generator-only key inside the topology/prefixes blocks: records the
  /// key, errors when the topology is explicit.
  void generator_key(const std::string& block, const Tok& key) {
    scalar_key(block, key);
    if (explicit_mode_) {
      fail(key.loc, "generator knob '" + std::string(key.text) +
                        "' is not allowed with an explicit topology");
    }
    generator_keys_.push_back(key.loc);
  }

  std::vector<std::uint32_t> parse_as_list(const std::vector<Tok>& toks,
                                           const char* role) {
    std::vector<std::uint32_t> list;
    list.reserve(toks.size() - 1);
    for (std::size_t i = 1; i < toks.size(); ++i) {
      const std::uint32_t as = parse_as(toks[i]);
      as_refs_.push_back({as, toks[i].loc, role});
      list.push_back(as);
    }
    return list;
  }

  // ---- top level -------------------------------------------------------

  void parse_lines() {
    std::size_t line_no = 0;
    std::size_t pos = 0;
    while (pos <= text_.size()) {
      const std::size_t nl = text_.find('\n', pos);
      const std::string_view line =
          text_.substr(pos, nl == std::string_view::npos ? std::string_view::npos
                                                         : nl - pos);
      ++line_no;
      pos = nl == std::string_view::npos ? text_.size() + 1 : nl + 1;

      const std::vector<Tok> toks = tokenize(line, line_no);
      if (toks.empty()) continue;
      if (block_.empty()) {
        top_level(toks);
      } else {
        block_line(toks);
      }
    }
    if (!block_.empty()) {
      fail({line_no, 1}, "unterminated " + block_ + " block (missing '}')");
    }
    if (!saw_scenario_) {
      fail({1, 1}, "missing 'scenario <name>' header");
    }
  }

  void top_level(const std::vector<Tok>& toks) {
    const Tok& head = toks[0];
    if (head.text == "scenario") {
      if (saw_scenario_) fail(head.loc, "duplicate 'scenario' header");
      if (toks.size() != 2) {
        fail(toks.size() > 2 ? toks[2].loc : after(toks),
             "'scenario' expects exactly one name");
      }
      saw_scenario_ = true;
      name_ = std::string(toks[1].text);
      return;
    }
    if (!saw_scenario_) {
      fail(head.loc, "expected 'scenario <name>' before '" +
                         std::string(head.text) + "'");
    }
    if (head.text == "base") {
      if (saw_base_) fail(head.loc, "duplicate 'base' line");
      if (saw_block_) fail(head.loc, "'base' must precede every block");
      if (toks.size() < 2) fail(after(toks), "'base' expects a name");
      if (toks.size() > 3) fail(toks[3].loc, "unexpected trailing token");
      saw_base_ = true;
      base_loc_ = head.loc;
      if (toks[1].text == "default") {
        base_ = Base::kDefault;
        if (toks.size() == 3) {
          fail(toks[2].loc, "'base default' takes no seed");
        }
      } else if (toks[1].text == "small") {
        base_ = Base::kSmall;
        base_seed_ = toks.size() == 3 ? parse_u64(toks[2]) : 42;
      } else if (toks[1].text == "internet2002") {
        base_ = Base::kInternet2002;
        base_seed_ = toks.size() == 3 ? parse_u64(toks[2]) : 2002;
      } else {
        fail(toks[1].loc, "unknown base '" + std::string(toks[1].text) +
                              "' (expected default|small|internet2002)");
      }
      return;
    }
    // A block opener: `<name> {`.
    static const std::set<std::string_view> kBlocks = {
        "topology", "prefixes", "policy", "vantage",
        "override", "events",   "verify"};
    if (!kBlocks.contains(head.text)) {
      fail(head.loc, "unknown block or directive '" + std::string(head.text) +
                         "'");
    }
    if (toks.size() != 2 || toks[1].text != "{") {
      fail(toks.size() > 1 ? toks[1].loc : after(toks),
           "expected '{' after '" + std::string(head.text) + "'");
    }
    if (!seen_blocks_.insert(std::string(head.text)).second) {
      fail(head.loc, "duplicate " + std::string(head.text) + " block");
    }
    saw_block_ = true;
    block_ = std::string(head.text);
  }

  void block_line(const std::vector<Tok>& toks) {
    if (toks[0].text == "}") {
      if (toks.size() > 1) {
        fail(toks[1].loc, "unexpected token after '}'");
      }
      block_.clear();
      return;
    }
    if (block_ == "topology") {
      topology_line(toks);
    } else if (block_ == "prefixes") {
      prefixes_line(toks);
    } else if (block_ == "policy") {
      policy_line(toks);
    } else if (block_ == "vantage") {
      vantage_line(toks);
    } else if (block_ == "override") {
      override_line(toks);
    } else if (block_ == "events") {
      events_line(toks);
    } else {
      verify_line(toks);
    }
  }

  // ---- blocks ----------------------------------------------------------

  void topology_line(const std::vector<Tok>& toks) {
    const Tok& key = toks[0];
    const auto set_u64 = [&](auto member) {
      generator_key("topology", key);
      need_args(toks, 1);
      const std::uint64_t v = parse_u64(toks[1]);
      assigns_.push_back([member, v](Scenario& s) { s.topo_params.*member = v; });
    };
    const auto set_count = [&](std::size_t topo::GeneratorParams::* member) {
      generator_key("topology", key);
      need_args(toks, 1);
      const std::uint64_t v = parse_u64(toks[1]);
      assigns_.push_back(
          [member, v](Scenario& s) { s.topo_params.*member = v; });
    };
    const auto set_prob = [&](double topo::GeneratorParams::* member) {
      generator_key("topology", key);
      need_args(toks, 1);
      const double v = parse_prob(toks[1]);
      assigns_.push_back(
          [member, v](Scenario& s) { s.topo_params.*member = v; });
    };
    const auto set_nonneg = [&](double topo::GeneratorParams::* member) {
      generator_key("topology", key);
      need_args(toks, 1);
      const double v = parse_nonneg(toks[1]);
      assigns_.push_back(
          [member, v](Scenario& s) { s.topo_params.*member = v; });
    };

    if (key.text == "seed") {
      set_u64(&topo::GeneratorParams::seed);
    } else if (key.text == "tier1") {
      generator_key("topology", key);
      need_args(toks, 1);
      const std::uint64_t v = parse_u64(toks[1]);
      if (v == 0) fail(toks[1].loc, "tier1 count must be >= 1");
      assigns_.push_back([v](Scenario& s) { s.topo_params.tier1_count = v; });
    } else if (key.text == "tier2") {
      set_count(&topo::GeneratorParams::tier2_count);
    } else if (key.text == "tier3") {
      set_count(&topo::GeneratorParams::tier3_count);
    } else if (key.text == "stubs") {
      set_count(&topo::GeneratorParams::stub_count);
    } else if (key.text == "stub_multihome_prob") {
      set_prob(&topo::GeneratorParams::stub_multihome_prob);
    } else if (key.text == "max_stub_providers") {
      generator_key("topology", key);
      need_args(toks, 1);
      const std::uint64_t v = parse_u64(toks[1]);
      if (v == 0) fail(toks[1].loc, "max_stub_providers must be >= 1");
      assigns_.push_back(
          [v](Scenario& s) { s.topo_params.max_stub_providers = v; });
    } else if (key.text == "tier2_peer_mean") {
      set_nonneg(&topo::GeneratorParams::tier2_peer_mean);
    } else if (key.text == "tier3_peer_mean") {
      set_nonneg(&topo::GeneratorParams::tier3_peer_mean);
    } else if (key.text == "stub_peer_prob") {
      set_prob(&topo::GeneratorParams::stub_peer_prob);
    } else if (key.text == "tier3_direct_tier1_prob") {
      set_prob(&topo::GeneratorParams::tier3_direct_tier1_prob);
    } else if (key.text == "stub_tier1_frac") {
      set_prob(&topo::GeneratorParams::stub_tier1_frac);
    } else if (key.text == "stub_tier2_frac") {
      set_prob(&topo::GeneratorParams::stub_tier2_frac);
    } else if (key.text == "provider_popularity_skew") {
      set_nonneg(&topo::GeneratorParams::provider_popularity_skew);
    } else if (key.text == "max_process_per_as") {
      scalar_key("topology", key);
      need_args(toks, 1);
      const std::uint64_t v = parse_u64(toks[1]);
      if (v == 0) fail(toks[1].loc, "max_process_per_as must be >= 1");
      assigns_.push_back(
          [v](Scenario& s) { s.propagation.max_process_per_as = v; });
    } else if (key.text == "threads") {
      scalar_key("topology", key);
      need_args(toks, 1);
      const std::uint64_t v = parse_u64(toks[1]);
      assigns_.push_back([v](Scenario& s) { s.propagation.threads = v; });
    } else if (key.text == "explicit") {
      scalar_key("topology", key);
      need_args(toks, 0);
      if (!generator_keys_.empty()) {
        fail(key.loc,
             "explicit topology cannot be combined with generator knobs");
      }
      explicit_mode_ = true;
    } else if (key.text == "as") {
      require_explicit(key);
      need_args(toks, 2);
      const std::uint32_t as = parse_as(toks[1]);
      const topo::Tier tier = parse_tier(toks[2]);
      if (!declared_.insert(as).second) {
        fail(toks[1].loc,
             "AS " + std::to_string(as) + " declared twice");
      }
      world_.ases.push_back({as, tier});
    } else if (key.text == "provider" || key.text == "peer") {
      require_explicit(key);
      need_args(toks, 2);
      const std::uint32_t a = parse_as(toks[1]);
      const std::uint32_t b = parse_as(toks[2]);
      as_refs_.push_back({a, toks[1].loc, "link endpoint"});
      as_refs_.push_back({b, toks[2].loc, "link endpoint"});
      if (a == b) fail(toks[2].loc, "link endpoints must differ");
      world_.links.push_back({a, b, key.text == "peer"});
    } else {
      fail(key.loc, "unknown topology key '" + std::string(key.text) + "'");
    }
    (void)set_u64;
  }

  void require_explicit(const Tok& key) const {
    if (!explicit_mode_) {
      fail(key.loc, "'" + std::string(key.text) +
                        "' requires 'explicit' earlier in the topology block");
    }
  }

  void prefixes_line(const std::vector<Tok>& toks) {
    const Tok& key = toks[0];
    if (key.text == "seed") {
      generator_key("prefixes", key);
      need_args(toks, 1);
      const std::uint64_t v = parse_u64(toks[1]);
      assigns_.push_back([v](Scenario& s) { s.alloc_params.seed = v; });
    } else if (key.text == "provider_space_prob") {
      generator_key("prefixes", key);
      need_args(toks, 1);
      const double v = parse_prob(toks[1]);
      assigns_.push_back(
          [v](Scenario& s) { s.alloc_params.provider_space_prob = v; });
    } else if (key.text == "count_alpha") {
      generator_key("prefixes", key);
      need_args(toks, 1);
      const double v = parse_nonneg(toks[1]);
      assigns_.push_back([v](Scenario& s) { s.alloc_params.count_alpha = v; });
    } else if (key.text == "max_stub_prefixes") {
      generator_key("prefixes", key);
      need_args(toks, 1);
      const std::uint64_t v = parse_u64(toks[1]);
      if (v == 0) fail(toks[1].loc, "max_stub_prefixes must be >= 1");
      assigns_.push_back(
          [v](Scenario& s) { s.alloc_params.max_stub_prefixes = v; });
    } else if (key.text == "max_transit_extra") {
      generator_key("prefixes", key);
      need_args(toks, 1);
      const std::uint64_t v = parse_u64(toks[1]);
      assigns_.push_back(
          [v](Scenario& s) { s.alloc_params.max_transit_extra = v; });
    } else if (key.text == "originate") {
      if (!explicit_mode_) {
        fail(key.loc, "'originate' requires an explicit topology");
      }
      need_args(toks, 2);
      const std::uint32_t as = parse_as(toks[1]);
      as_refs_.push_back({as, toks[1].loc, "origination origin"});
      world_.originations.push_back({as, parse_prefix(toks[2])});
    } else {
      fail(key.loc, "unknown prefixes key '" + std::string(key.text) + "'");
    }
  }

  void policy_line(const std::vector<Tok>& toks) {
    const Tok& key = toks[0];
    const auto set_prob = [&](double sim::PolicyGenParams::* member) {
      scalar_key("policy", key);
      need_args(toks, 1);
      const double v = parse_prob(toks[1]);
      assigns_.push_back(
          [member, v](Scenario& s) { s.policy_params.*member = v; });
    };

    if (key.text == "seed") {
      scalar_key("policy", key);
      need_args(toks, 1);
      const std::uint64_t v = parse_u64(toks[1]);
      assigns_.push_back([v](Scenario& s) { s.policy_params.seed = v; });
    } else if (key.text == "atypical_neighbor_prob") {
      set_prob(&sim::PolicyGenParams::atypical_neighbor_prob);
    } else if (key.text == "te_as_prob") {
      set_prob(&sim::PolicyGenParams::te_as_prob);
    } else if (key.text == "te_prefix_max_rate") {
      set_prob(&sim::PolicyGenParams::te_prefix_max_rate);
    } else if (key.text == "origin_selective_as_prob") {
      set_prob(&sim::PolicyGenParams::origin_selective_as_prob);
    } else if (key.text == "withhold_prefix_prob") {
      set_prob(&sim::PolicyGenParams::withhold_prefix_prob);
    } else if (key.text == "single_announce_prob") {
      set_prob(&sim::PolicyGenParams::single_announce_prob);
    } else if (key.text == "community_flavor_prob") {
      set_prob(&sim::PolicyGenParams::community_flavor_prob);
    } else if (key.text == "community_target_prob") {
      set_prob(&sim::PolicyGenParams::community_target_prob);
    } else if (key.text == "prepend_as_prob") {
      set_prob(&sim::PolicyGenParams::prepend_as_prob);
    } else if (key.text == "max_prepend") {
      scalar_key("policy", key);
      need_args(toks, 1);
      const std::uint64_t v = parse_u64(toks[1]);
      if (v > 255) fail(toks[1].loc, "max_prepend out of range (max 255)");
      assigns_.push_back([v](Scenario& s) {
        s.policy_params.max_prepend = static_cast<std::uint8_t>(v);
      });
    } else if (key.text == "intermediate_selective_prob") {
      set_prob(&sim::PolicyGenParams::intermediate_selective_prob);
    } else if (key.text == "intermediate_victim_prob") {
      set_prob(&sim::PolicyGenParams::intermediate_victim_prob);
    } else if (key.text == "splitting_as_prob") {
      set_prob(&sim::PolicyGenParams::splitting_as_prob);
    } else if (key.text == "aggregation_prob") {
      set_prob(&sim::PolicyGenParams::aggregation_prob);
    } else if (key.text == "peer_withhold_prob") {
      set_prob(&sim::PolicyGenParams::peer_withhold_prob);
    } else if (key.text == "peer_withhold_total_prob") {
      set_prob(&sim::PolicyGenParams::peer_withhold_total_prob);
    } else if (key.text == "tagging_as_prob") {
      set_prob(&sim::PolicyGenParams::tagging_as_prob);
    } else if (key.text == "publish_prob") {
      set_prob(&sim::PolicyGenParams::publish_prob);
    } else if (key.text == "force_tagging") {
      scalar_key("policy", key);
      force_tagging_assigned_ = true;
      const std::vector<std::uint32_t> list =
          parse_as_list(toks, "force_tagging");
      assigns_.push_back([list](Scenario& s) {
        s.policy_params.force_tagging.clear();
        for (const std::uint32_t as : list) {
          s.policy_params.force_tagging.emplace_back(as);
        }
      });
    } else if (key.text == "irr_seed") {
      scalar_key("policy", key);
      need_args(toks, 1);
      const std::uint64_t v = parse_u64(toks[1]);
      assigns_.push_back([v](Scenario& s) { s.irr_params.seed = v; });
    } else if (key.text == "irr_coverage") {
      scalar_key("policy", key);
      need_args(toks, 1);
      const double v = parse_prob(toks[1]);
      assigns_.push_back([v](Scenario& s) { s.irr_params.coverage = v; });
    } else if (key.text == "irr_stale_prob") {
      scalar_key("policy", key);
      need_args(toks, 1);
      const double v = parse_prob(toks[1]);
      assigns_.push_back([v](Scenario& s) { s.irr_params.stale_prob = v; });
    } else if (key.text == "irr_wrong_pref_prob") {
      scalar_key("policy", key);
      need_args(toks, 1);
      const double v = parse_prob(toks[1]);
      assigns_.push_back(
          [v](Scenario& s) { s.irr_params.wrong_pref_prob = v; });
    } else if (key.text == "irr_missing_pref_prob") {
      scalar_key("policy", key);
      need_args(toks, 1);
      const double v = parse_prob(toks[1]);
      assigns_.push_back(
          [v](Scenario& s) { s.irr_params.missing_pref_prob = v; });
    } else if (key.text == "irr_fresh_date") {
      scalar_key("policy", key);
      need_args(toks, 1);
      const std::uint32_t v = parse_u32(toks[1]);
      assigns_.push_back([v](Scenario& s) { s.irr_params.fresh_date = v; });
    } else if (key.text == "irr_stale_date") {
      scalar_key("policy", key);
      need_args(toks, 1);
      const std::uint32_t v = parse_u32(toks[1]);
      assigns_.push_back([v](Scenario& s) { s.irr_params.stale_date = v; });
    } else {
      fail(key.loc, "unknown policy key '" + std::string(key.text) + "'");
    }
  }

  void vantage_line(const std::vector<Tok>& toks) {
    const Tok& key = toks[0];
    if (key.text == "looking_glass") {
      scalar_key("vantage", key);
      const auto list = parse_as_list(toks, "looking_glass");
      assigns_.push_back([list](Scenario& s) { s.looking_glass = list; });
    } else if (key.text == "best_only") {
      scalar_key("vantage", key);
      const auto list = parse_as_list(toks, "best_only");
      assigns_.push_back([list](Scenario& s) { s.best_only = list; });
    } else if (key.text == "verification") {
      scalar_key("vantage", key);
      verification_assigned_ = true;
      const auto list = parse_as_list(toks, "verification");
      assigns_.push_back([list](Scenario& s) { s.verification_ases = list; });
    } else if (key.text == "collector_tier2_peers") {
      scalar_key("vantage", key);
      need_args(toks, 1);
      const std::uint64_t v = parse_u64(toks[1]);
      assigns_.push_back(
          [v](Scenario& s) { s.collector_tier2_peers = v; });
    } else if (key.text == "collector_tier3_peers") {
      scalar_key("vantage", key);
      need_args(toks, 1);
      const std::uint64_t v = parse_u64(toks[1]);
      assigns_.push_back(
          [v](Scenario& s) { s.collector_tier3_peers = v; });
    } else {
      fail(key.loc, "unknown vantage key '" + std::string(key.text) + "'");
    }
  }

  void override_line(const std::vector<Tok>& toks) {
    const Tok& key = toks[0];
    PolicyOverride o;
    if (key.text == "prefer") {
      need_args(toks, 3);
      o.kind = PolicyOverride::Kind::kPreferNeighbor;
      o.as = parse_as(toks[1]);
      o.neighbor = parse_as(toks[2]);
      o.value = parse_u32(toks[3]);
      as_refs_.push_back({o.as, toks[1].loc, "override"});
      as_refs_.push_back({o.neighbor, toks[2].loc, "override neighbor"});
    } else if (key.text == "prefer_prefix") {
      need_args(toks, 3);
      o.kind = PolicyOverride::Kind::kPreferPrefix;
      o.as = parse_as(toks[1]);
      o.prefix = parse_prefix(toks[2]);
      o.value = parse_u32(toks[3]);
      as_refs_.push_back({o.as, toks[1].loc, "override"});
    } else if (key.text == "deny" || key.text == "no_export_upstream") {
      if (toks.size() < 3 || toks.size() > 4) {
        fail(after(toks), "'" + std::string(key.text) +
                              "' expects <as> <neighbor> [<prefix>]");
      }
      o.kind = key.text == "deny" ? PolicyOverride::Kind::kDeny
                                  : PolicyOverride::Kind::kNoExportUpstream;
      o.as = parse_as(toks[1]);
      o.neighbor = parse_as(toks[2]);
      if (toks.size() == 4) o.prefix = parse_prefix(toks[3]);
      as_refs_.push_back({o.as, toks[1].loc, "override"});
      as_refs_.push_back({o.neighbor, toks[2].loc, "override neighbor"});
    } else if (key.text == "prepend") {
      need_args(toks, 3);
      o.kind = PolicyOverride::Kind::kPrepend;
      o.as = parse_as(toks[1]);
      o.neighbor = parse_as(toks[2]);
      const std::uint64_t times = parse_u64(toks[3]);
      if (times == 0 || times > 255) {
        fail(toks[3].loc, "prepend count must be in [1, 255]");
      }
      o.value = static_cast<std::uint32_t>(times);
      as_refs_.push_back({o.as, toks[1].loc, "override"});
      as_refs_.push_back({o.neighbor, toks[2].loc, "override neighbor"});
    } else if (key.text == "conditional") {
      // conditional <as> <prefix> <advertise_to> watch <provider>
      need_args(toks, 5);
      if (toks[4].text != "watch") {
        fail(toks[4].loc, "expected 'watch', got '" +
                              std::string(toks[4].text) + "'");
      }
      o.kind = PolicyOverride::Kind::kConditional;
      o.as = parse_as(toks[1]);
      o.prefix = parse_prefix(toks[2]);
      o.neighbor = parse_as(toks[3]);
      o.watch = parse_as(toks[5]);
      as_refs_.push_back({o.as, toks[1].loc, "override"});
      as_refs_.push_back({o.neighbor, toks[3].loc, "override neighbor"});
      as_refs_.push_back({o.watch, toks[5].loc, "override watch"});
    } else if (key.text == "tagging") {
      need_args(toks, 2);
      o.kind = PolicyOverride::Kind::kTagging;
      o.as = parse_as(toks[1]);
      o.value = parse_on_off(toks[2]) ? 1 : 0;
      as_refs_.push_back({o.as, toks[1].loc, "override"});
    } else {
      fail(key.loc, "unknown override '" + std::string(key.text) + "'");
    }
    overrides_.push_back(std::move(o));
  }

  void events_line(const std::vector<Tok>& toks) {
    const Tok& key = toks[0];
    SpecEvent event;
    event.loc = key.loc;
    if (key.text == "withdraw" || key.text == "announce") {
      need_args(toks, 2);
      event.kind = key.text == "withdraw" ? SpecEvent::Kind::kWithdraw
                                          : SpecEvent::Kind::kAnnounce;
      event.as_a = parse_as(toks[1]);
      event.prefix = parse_prefix(toks[2]);
      as_refs_.push_back({event.as_a, toks[1].loc, "event origin"});
    } else if (key.text == "fail" || key.text == "restore") {
      need_args(toks, 2);
      event.kind = key.text == "fail" ? SpecEvent::Kind::kFailLink
                                      : SpecEvent::Kind::kRestoreLink;
      event.as_a = parse_as(toks[1]);
      event.as_b = parse_as(toks[2]);
      if (event.as_a == event.as_b) {
        fail(toks[2].loc, "link endpoints must differ");
      }
      as_refs_.push_back({event.as_a, toks[1].loc, "event endpoint"});
      as_refs_.push_back({event.as_b, toks[2].loc, "event endpoint"});
    } else {
      fail(key.loc, "unknown event '" + std::string(key.text) +
                        "' (expected withdraw|announce|fail|restore)");
    }
    spec_.events.push_back(std::move(event));
  }

  /// Consumes a trailing `at <k>` clause; returns SpecCheck::kAtEnd when
  /// absent.  `next` is the index where the clause would start.
  std::size_t parse_at_clause(const std::vector<Tok>& toks,
                              std::size_t next) {
    if (next == toks.size()) return SpecCheck::kAtEnd;
    if (toks[next].text != "at") {
      fail(toks[next].loc, "unexpected token '" +
                               std::string(toks[next].text) +
                               "' (expected 'at <k>' or end of line)");
    }
    if (next + 1 >= toks.size()) {
      fail(after(toks), "'at' expects an event count");
    }
    if (next + 2 < toks.size()) {
      fail(toks[next + 2].loc, "unexpected trailing token");
    }
    const std::uint64_t k = parse_u64(toks[next + 1]);
    at_clauses_.push_back({k, toks[next + 1].loc});
    return static_cast<std::size_t>(k);
  }

  void verify_line(const std::vector<Tok>& toks) {
    const Tok& key = toks[0];
    SpecCheck check;
    check.loc = key.loc;
    if (key.text == "converged") {
      need_args(toks, 0);
      check.kind = SpecCheck::Kind::kConverged;
    } else if (key.text == "route") {
      if (toks.size() < 5) {
        fail(after(toks),
             "'route' expects <vantage> <prefix> via|origin|path ...");
      }
      check.vantage = parse_as(toks[1]);
      as_refs_.push_back({check.vantage, toks[1].loc, "verify vantage"});
      check.prefix = parse_prefix(toks[2]);
      const Tok& mode = toks[3];
      if (mode.text == "via" || mode.text == "origin") {
        check.kind = mode.text == "via" ? SpecCheck::Kind::kRouteVia
                                        : SpecCheck::Kind::kRouteOrigin;
        check.expect_as = parse_as(toks[4]);
        check.at_event = parse_at_clause(toks, 5);
      } else if (mode.text == "path") {
        check.kind = SpecCheck::Kind::kRoutePath;
        std::size_t i = 4;
        while (i < toks.size() && toks[i].text != "at") {
          check.expect_path.push_back(parse_as(toks[i]));
          ++i;
        }
        if (check.expect_path.empty()) {
          fail(toks[4].loc, "'path' expects at least one AS");
        }
        check.at_event = parse_at_clause(toks, i);
      } else {
        fail(mode.loc, "expected via|origin|path, got '" +
                           std::string(mode.text) + "'");
      }
    } else if (key.text == "unreachable") {
      if (toks.size() < 3) {
        fail(after(toks), "'unreachable' expects <vantage> <prefix>");
      }
      check.kind = SpecCheck::Kind::kUnreachable;
      check.vantage = parse_as(toks[1]);
      as_refs_.push_back({check.vantage, toks[1].loc, "verify vantage"});
      check.prefix = parse_prefix(toks[2]);
      check.at_event = parse_at_clause(toks, 3);
    } else if (key.text == "sa_prevalence" || key.text == "homing_multihomed" ||
               key.text == "import_typical") {
      need_args(toks, 3);
      check.kind = key.text == "sa_prevalence"
                       ? SpecCheck::Kind::kSaPrevalence
                       : (key.text == "homing_multihomed"
                              ? SpecCheck::Kind::kHomingMultihomed
                              : SpecCheck::Kind::kImportTypical);
      check.vantage = parse_as(toks[1]);
      as_refs_.push_back({check.vantage, toks[1].loc, "verify vantage"});
      check.lo = parse_pct(toks[2]);
      check.hi = parse_pct(toks[3]);
      if (check.lo > check.hi) {
        fail(toks[3].loc, "bounds must satisfy lo <= hi");
      }
    } else if (key.text == "inference_accuracy") {
      need_args(toks, 1);
      check.kind = SpecCheck::Kind::kInferenceAccuracy;
      check.lo = parse_pct(toks[1]);
      check.hi = 100.0;
    } else if (key.text == "digest") {
      need_args(toks, 2);
      check.kind = SpecCheck::Kind::kDigest;
      check.stage = parse_stage(toks[1]);
      const std::string_view hex = toks[2].text;
      const bool valid =
          hex.size() == 32 &&
          std::all_of(hex.begin(), hex.end(), [](char c) {
            return (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f');
          });
      if (!valid) {
        fail(toks[2].loc, "expected a 32-character lowercase hex digest");
      }
      check.digest = std::string(hex);
    } else {
      fail(key.loc, "unknown verify assertion '" + std::string(key.text) +
                        "'");
    }
    spec_.checks.push_back(std::move(check));
  }

  // ---- finalize --------------------------------------------------------

  void finalize() {
    if (explicit_mode_ && base_ != Base::kDefault) {
      fail(base_loc_, "an explicit topology requires 'base default'");
    }

    switch (base_) {
      case Base::kDefault: spec_.scenario = Scenario{}; break;
      case Base::kSmall: spec_.scenario = Scenario::small(base_seed_); break;
      case Base::kInternet2002:
        spec_.scenario = Scenario::internet2002(base_seed_);
        break;
    }
    spec_.scenario.name = name_;
    if (explicit_mode_) {
      // Explicit worlds start policy-silent: the generator's probabilistic
      // knobs are zeroed so the hand-written world carries exactly the
      // declared policies; knobs and overrides opt back in.
      make_policy_inert(spec_.scenario.policy_params);
      spec_.scenario.explicit_world = std::move(world_);
    }
    for (const Assign& assign : assigns_) assign(spec_.scenario);
    spec_.scenario.overrides = std::move(overrides_);

    // Constructor convention: verification vantages run a tagging scheme.
    // A spec that sets `verification` inherits it unless it pins
    // force_tagging itself.
    if (verification_assigned_ && !force_tagging_assigned_) {
      spec_.scenario.policy_params.force_tagging.clear();
      for (const std::uint32_t as : spec_.scenario.verification_ases) {
        spec_.scenario.policy_params.force_tagging.emplace_back(as);
      }
    }

    // `at <k>` clauses must lie within the event script.
    for (const auto& [k, loc] : at_clauses_) {
      if (k > spec_.events.size()) {
        fail(loc, "'at " + std::to_string(k) + "' exceeds the " +
                      std::to_string(spec_.events.size()) +
                      "-event script");
      }
    }

    // In an explicit world every referenced AS must be declared; the
    // parser knows the declared set, so undeclared ids are parse errors
    // with positions (generated worlds resolve ids at synthesize time).
    if (explicit_mode_) {
      for (const AsRef& ref : as_refs_) {
        if (!declared_.contains(ref.as)) {
          fail(ref.loc, std::string(ref.role) + " references undeclared AS " +
                            std::to_string(ref.as));
        }
      }
    }
  }

  enum class Base : std::uint8_t { kDefault, kSmall, kInternet2002 };

  struct AsRef {
    std::uint32_t as = 0;
    SourceLoc loc;
    const char* role = "";
  };

  std::string_view text_;
  std::string source_;
  ScenarioSpec spec_;

  bool saw_scenario_ = false;
  bool saw_base_ = false;
  bool saw_block_ = false;
  bool explicit_mode_ = false;
  bool verification_assigned_ = false;
  bool force_tagging_assigned_ = false;
  Base base_ = Base::kDefault;
  std::uint64_t base_seed_ = 0;
  SourceLoc base_loc_;
  std::string name_;
  std::string block_;

  std::set<std::string> seen_blocks_;
  std::unordered_map<std::string, std::unordered_set<std::string>> seen_keys_;
  std::vector<SourceLoc> generator_keys_;
  std::vector<Assign> assigns_;
  ExplicitWorld world_;
  std::unordered_set<std::uint32_t> declared_;
  std::vector<PolicyOverride> overrides_;
  std::vector<AsRef> as_refs_;
  std::vector<std::pair<std::uint64_t, SourceLoc>> at_clauses_;
};

}  // namespace

// ----------------------------------------------------------------- parse --

ScenarioSpec ScenarioSpec::parse(std::string_view text,
                                 std::string source_name) {
  Parser parser(text, std::move(source_name));
  return parser.run();
}

ScenarioSpec ScenarioSpec::parse_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("cannot read scenario spec " + path.string());
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse(buffer.str(), path.string());
}

// ------------------------------------------------------------------ dump --

namespace {

void dump_as_list(std::string& out, const char* key,
                  std::span<const std::uint32_t> list) {
  out += "  ";
  out += key;
  for (const std::uint32_t as : list) {
    out += ' ';
    out += std::to_string(as);
  }
  out += '\n';
}

const char* tier_word(topo::Tier tier) {
  switch (tier) {
    case topo::Tier::kTier1: return "tier1";
    case topo::Tier::kTier2: return "tier2";
    case topo::Tier::kTier3: return "tier3";
    case topo::Tier::kStub: return "stub";
  }
  return "stub";
}

}  // namespace

std::string ScenarioSpec::dump() const {
  const Scenario& s = scenario;
  std::string out;
  out.reserve(4096);
  const auto kv = [&](const char* key, const std::string& value) {
    out += "  ";
    out += key;
    out += ' ';
    out += value;
    out += '\n';
  };
  const auto kvu = [&](const char* key, std::uint64_t value) {
    kv(key, std::to_string(value));
  };
  const auto kvd = [&](const char* key, double value) {
    kv(key, format_double(value));
  };

  out += "scenario " + s.name + "\n\n";

  out += "topology {\n";
  if (s.explicit_world) {
    const ExplicitWorld& w = *s.explicit_world;
    out += "  explicit\n";
    for (const ExplicitWorld::As& as : w.ases) {
      kv("as", std::to_string(as.number) + " " + tier_word(as.tier));
    }
    for (const ExplicitWorld::Link& link : w.links) {
      kv(link.peer ? "peer" : "provider",
         std::to_string(link.a) + " " + std::to_string(link.b));
    }
  } else {
    const topo::GeneratorParams& t = s.topo_params;
    kvu("seed", t.seed);
    kvu("tier1", t.tier1_count);
    kvu("tier2", t.tier2_count);
    kvu("tier3", t.tier3_count);
    kvu("stubs", t.stub_count);
    kvd("stub_multihome_prob", t.stub_multihome_prob);
    kvu("max_stub_providers", t.max_stub_providers);
    kvd("tier2_peer_mean", t.tier2_peer_mean);
    kvd("tier3_peer_mean", t.tier3_peer_mean);
    kvd("stub_peer_prob", t.stub_peer_prob);
    kvd("tier3_direct_tier1_prob", t.tier3_direct_tier1_prob);
    kvd("stub_tier1_frac", t.stub_tier1_frac);
    kvd("stub_tier2_frac", t.stub_tier2_frac);
    kvd("provider_popularity_skew", t.provider_popularity_skew);
  }
  kvu("max_process_per_as", s.propagation.max_process_per_as);
  kvu("threads", s.propagation.threads);
  out += "}\n\n";

  out += "prefixes {\n";
  if (s.explicit_world) {
    for (const ExplicitWorld::Origination& o : s.explicit_world->originations) {
      kv("originate", std::to_string(o.origin) + " " + o.prefix.to_string());
    }
  } else {
    const topo::PrefixAllocParams& a = s.alloc_params;
    kvu("seed", a.seed);
    kvd("provider_space_prob", a.provider_space_prob);
    kvd("count_alpha", a.count_alpha);
    kvu("max_stub_prefixes", a.max_stub_prefixes);
    kvu("max_transit_extra", a.max_transit_extra);
  }
  out += "}\n\n";

  out += "policy {\n";
  {
    const sim::PolicyGenParams& p = s.policy_params;
    kvu("seed", p.seed);
    kvd("atypical_neighbor_prob", p.atypical_neighbor_prob);
    kvd("te_as_prob", p.te_as_prob);
    kvd("te_prefix_max_rate", p.te_prefix_max_rate);
    kvd("origin_selective_as_prob", p.origin_selective_as_prob);
    kvd("withhold_prefix_prob", p.withhold_prefix_prob);
    kvd("single_announce_prob", p.single_announce_prob);
    kvd("community_flavor_prob", p.community_flavor_prob);
    kvd("community_target_prob", p.community_target_prob);
    kvd("prepend_as_prob", p.prepend_as_prob);
    kvu("max_prepend", p.max_prepend);
    kvd("intermediate_selective_prob", p.intermediate_selective_prob);
    kvd("intermediate_victim_prob", p.intermediate_victim_prob);
    kvd("splitting_as_prob", p.splitting_as_prob);
    kvd("aggregation_prob", p.aggregation_prob);
    kvd("peer_withhold_prob", p.peer_withhold_prob);
    kvd("peer_withhold_total_prob", p.peer_withhold_total_prob);
    kvd("tagging_as_prob", p.tagging_as_prob);
    kvd("publish_prob", p.publish_prob);
    std::vector<std::uint32_t> force;
    force.reserve(p.force_tagging.size());
    for (const util::AsNumber as : p.force_tagging) {
      force.push_back(as.value());
    }
    dump_as_list(out, "force_tagging", force);
    const rpsl::IrrGenParams& i = s.irr_params;
    kvu("irr_seed", i.seed);
    kvd("irr_coverage", i.coverage);
    kvd("irr_stale_prob", i.stale_prob);
    kvd("irr_wrong_pref_prob", i.wrong_pref_prob);
    kvd("irr_missing_pref_prob", i.missing_pref_prob);
    kvu("irr_fresh_date", i.fresh_date);
    kvu("irr_stale_date", i.stale_date);
  }
  out += "}\n\n";

  out += "vantage {\n";
  dump_as_list(out, "looking_glass", s.looking_glass);
  dump_as_list(out, "best_only", s.best_only);
  dump_as_list(out, "verification", s.verification_ases);
  kvu("collector_tier2_peers", s.collector_tier2_peers);
  kvu("collector_tier3_peers", s.collector_tier3_peers);
  out += "}\n";

  if (!s.overrides.empty()) {
    out += "\noverride {\n";
    for (const PolicyOverride& o : s.overrides) {
      switch (o.kind) {
        case PolicyOverride::Kind::kPreferNeighbor:
          kv("prefer", std::to_string(o.as) + " " + std::to_string(o.neighbor) +
                           " " + std::to_string(o.value));
          break;
        case PolicyOverride::Kind::kPreferPrefix:
          kv("prefer_prefix", std::to_string(o.as) + " " +
                                  o.prefix->to_string() + " " +
                                  std::to_string(o.value));
          break;
        case PolicyOverride::Kind::kDeny:
        case PolicyOverride::Kind::kNoExportUpstream: {
          std::string line = std::to_string(o.as) + " " +
                             std::to_string(o.neighbor);
          if (o.prefix) line += " " + o.prefix->to_string();
          kv(o.kind == PolicyOverride::Kind::kDeny ? "deny"
                                                   : "no_export_upstream",
             line);
          break;
        }
        case PolicyOverride::Kind::kPrepend:
          kv("prepend", std::to_string(o.as) + " " +
                            std::to_string(o.neighbor) + " " +
                            std::to_string(o.value));
          break;
        case PolicyOverride::Kind::kConditional:
          kv("conditional", std::to_string(o.as) + " " +
                                o.prefix->to_string() + " " +
                                std::to_string(o.neighbor) + " watch " +
                                std::to_string(o.watch));
          break;
        case PolicyOverride::Kind::kTagging:
          kv("tagging",
             std::to_string(o.as) + (o.value != 0 ? " on" : " off"));
          break;
      }
    }
    out += "}\n";
  }

  if (!events.empty()) {
    out += "\nevents {\n";
    for (const SpecEvent& event : events) {
      switch (event.kind) {
        case SpecEvent::Kind::kWithdraw:
          kv("withdraw", std::to_string(event.as_a) + " " +
                             event.prefix.to_string());
          break;
        case SpecEvent::Kind::kAnnounce:
          kv("announce", std::to_string(event.as_a) + " " +
                             event.prefix.to_string());
          break;
        case SpecEvent::Kind::kFailLink:
          kv("fail", std::to_string(event.as_a) + " " +
                         std::to_string(event.as_b));
          break;
        case SpecEvent::Kind::kRestoreLink:
          kv("restore", std::to_string(event.as_a) + " " +
                            std::to_string(event.as_b));
          break;
      }
    }
    out += "}\n";
  }

  if (!checks.empty()) {
    out += "\nverify {\n";
    for (const SpecCheck& check : checks) {
      const auto at_suffix = [&]() -> std::string {
        return check.at_event == SpecCheck::kAtEnd
                   ? ""
                   : " at " + std::to_string(check.at_event);
      };
      switch (check.kind) {
        case SpecCheck::Kind::kConverged:
          out += "  converged\n";
          break;
        case SpecCheck::Kind::kRouteVia:
          kv("route", std::to_string(check.vantage) + " " +
                          check.prefix.to_string() + " via " +
                          std::to_string(check.expect_as) + at_suffix());
          break;
        case SpecCheck::Kind::kRouteOrigin:
          kv("route", std::to_string(check.vantage) + " " +
                          check.prefix.to_string() + " origin " +
                          std::to_string(check.expect_as) + at_suffix());
          break;
        case SpecCheck::Kind::kRoutePath: {
          std::string line = std::to_string(check.vantage) + " " +
                             check.prefix.to_string() + " path";
          for (const std::uint32_t as : check.expect_path) {
            line += " " + std::to_string(as);
          }
          kv("route", line + at_suffix());
          break;
        }
        case SpecCheck::Kind::kUnreachable:
          kv("unreachable", std::to_string(check.vantage) + " " +
                                check.prefix.to_string() + at_suffix());
          break;
        case SpecCheck::Kind::kSaPrevalence:
          kv("sa_prevalence", std::to_string(check.vantage) + " " +
                                  format_double(check.lo) + " " +
                                  format_double(check.hi));
          break;
        case SpecCheck::Kind::kHomingMultihomed:
          kv("homing_multihomed", std::to_string(check.vantage) + " " +
                                      format_double(check.lo) + " " +
                                      format_double(check.hi));
          break;
        case SpecCheck::Kind::kImportTypical:
          kv("import_typical", std::to_string(check.vantage) + " " +
                                   format_double(check.lo) + " " +
                                   format_double(check.hi));
          break;
        case SpecCheck::Kind::kInferenceAccuracy:
          kv("inference_accuracy", format_double(check.lo));
          break;
        case SpecCheck::Kind::kDigest:
          kv("digest",
             std::string(to_string(check.stage)) + " " + check.digest);
          break;
      }
    }
    out += "}\n";
  }
  return out;
}

// ------------------------------------------------------------- utilities --

Stage ScenarioSpec::required_stage() const {
  Stage deepest = Stage::kSynthesize;
  const auto bump = [&](Stage stage) {
    if (static_cast<int>(stage) > static_cast<int>(deepest)) deepest = stage;
  };
  for (const SpecCheck& check : checks) {
    switch (check.kind) {
      case SpecCheck::Kind::kConverged: bump(Stage::kSimulate); break;
      case SpecCheck::Kind::kRouteVia:
      case SpecCheck::Kind::kRouteOrigin:
      case SpecCheck::Kind::kRoutePath:
      case SpecCheck::Kind::kUnreachable:
        bump(Stage::kSynthesize);
        break;
      case SpecCheck::Kind::kSaPrevalence:
      case SpecCheck::Kind::kHomingMultihomed:
      case SpecCheck::Kind::kImportTypical:
        bump(Stage::kAnalyze);
        break;
      case SpecCheck::Kind::kInferenceAccuracy: bump(Stage::kInfer); break;
      case SpecCheck::Kind::kDigest: bump(check.stage); break;
    }
  }
  return deepest;
}

SweepVariant ScenarioSpec::to_variant() const {
  SweepVariant variant;
  variant.label = scenario.name;
  variant.scenario = scenario;
  return variant;
}

std::vector<ScenarioSpec> load_spec_dir(const std::filesystem::path& dir) {
  if (!std::filesystem::is_directory(dir)) {
    throw std::runtime_error("not a scenario directory: " + dir.string());
  }
  std::vector<std::filesystem::path> files;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.is_regular_file() && entry.path().extension() == ".scn") {
      files.push_back(entry.path());
    }
  }
  std::sort(files.begin(), files.end());
  std::vector<ScenarioSpec> specs;
  specs.reserve(files.size());
  for (const auto& file : files) {
    specs.push_back(ScenarioSpec::parse_file(file));
  }
  return specs;
}

std::vector<SweepVariant> spec_sweep_variants(
    std::span<const ScenarioSpec> specs) {
  std::vector<SweepVariant> variants;
  variants.reserve(specs.size());
  for (const ScenarioSpec& spec : specs) {
    variants.push_back(spec.to_variant());
  }
  return variants;
}

}  // namespace bgpolicy::core
