// Relationship lookup abstraction for the inference modules.
//
// Every algorithm in core consumes relationships through this functor, so
// each can run either against *inferred* relationships (as the paper did)
// or against the simulator's ground truth (for scoring) without code
// changes.
#pragma once

#include <functional>
#include <optional>

#include "asrel/relationships.h"
#include "topology/as_graph.h"
#include "util/ids.h"

namespace bgpolicy::core {

using topo::RelKind;
using util::AsNumber;

/// oracle(as, other) answers "what is `other` to `as`?" — customer, peer,
/// provider, or nullopt when unknown/not adjacent.
using RelationshipOracle =
    std::function<std::optional<RelKind>(AsNumber, AsNumber)>;

[[nodiscard]] inline RelationshipOracle oracle_from(
    const topo::AsGraph& graph) {
  return [&graph](AsNumber as, AsNumber other) {
    return graph.relationship(as, other);
  };
}

[[nodiscard]] inline RelationshipOracle oracle_from(
    const asrel::InferredRelationships& inferred) {
  return [&inferred](AsNumber as, AsNumber other) {
    return inferred.relationship(as, other);
  };
}

}  // namespace bgpolicy::core
