// Causes of SA prefixes (paper Section 5.1.5, Table 9 and the Case 1/2/3
// analysis).
//
//   Case 1 — prefix splitting: an SA prefix strictly covered by another
//            prefix of the *same* origin whose route at the provider is a
//            customer route.
//   Case 2 — prefix aggregating (upper bound, as in the paper): an SA
//            prefix strictly covered by any other announced prefix of a
//            *different* origin.
//   Case 3 — selective announcing: for the remaining SA prefixes, scan all
//            observed paths of the prefix for a direct-provider adjacency
//            on the provider's customer side.  Present => the customer
//            announced to its direct provider (the announcement was capped
//            further up, e.g. by a no-export community); absent => the
//            customer withheld the prefix from that provider entirely.
//            Single-homed origins are walked up to their first multihomed
//            ancestor ("the last common AS" of Fig. 8b).
#pragma once

#include "core/export_inference.h"
#include "core/path_index.h"
#include "core/relationship_oracle.h"

namespace bgpolicy::core {

struct CausesAnalysis {
  AsNumber provider;
  std::size_t sa_total = 0;
  std::size_t splitting = 0;
  std::size_t aggregating = 0;

  // Case 3 among SA prefixes (the paper reports AS1: ~90% identified, of
  // which ~21% announce to the direct provider and ~79% do not).
  std::size_t identified = 0;
  std::size_t announce_to_direct = 0;
  std::size_t withheld_from_direct = 0;
  double percent_identified = 0.0;
  double percent_announce = 0.0;
  double percent_withheld = 0.0;
};

[[nodiscard]] CausesAnalysis analyze_causes(const SaAnalysis& analysis,
                                            const bgp::BgpTable& provider_table,
                                            const PathIndex& paths,
                                            const topo::AsGraph& annotated,
                                            const RelationshipOracle& rels);

}  // namespace bgpolicy::core
