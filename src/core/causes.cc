#include "core/causes.h"

#include <unordered_set>

#include "bgp/prefix_trie.h"
#include "util/stats.h"

namespace bgpolicy::core {

namespace {

struct TrieEntry {
  AsNumber origin;
  bool customer_route = false;
};

// The "customer" whose export behavior Case 3 interrogates: the origin if
// multihomed, else its first multihomed ancestor (Fig. 8b's last common
// AS).  Returns nullopt when the walk leaves the annotated graph or loops.
std::optional<AsNumber> responsible_customer(AsNumber origin,
                                             const topo::AsGraph& annotated) {
  AsNumber current = origin;
  std::unordered_set<AsNumber> seen;
  while (seen.insert(current).second) {
    if (!annotated.contains(current)) return std::nullopt;
    const auto providers = annotated.providers(current);
    if (providers.empty()) return std::nullopt;
    if (providers.size() >= 2) return current;
    current = providers.front();
  }
  return std::nullopt;
}

}  // namespace

CausesAnalysis analyze_causes(const SaAnalysis& analysis,
                              const bgp::BgpTable& provider_table,
                              const PathIndex& paths,
                              const topo::AsGraph& annotated,
                              const RelationshipOracle& rels) {
  CausesAnalysis out;
  out.provider = analysis.provider;
  out.sa_total = analysis.sa_prefixes.size();

  // Index every announced prefix at the provider with origin + route class.
  bgp::PrefixTrie<TrieEntry> trie;
  provider_table.for_each(
      [&](const bgp::Prefix& prefix, std::span<const bgp::Route>) {
        const bgp::Route* best = provider_table.best(prefix);
        if (best == nullptr) return;
        TrieEntry entry;
        entry.origin = best->origin_as();
        entry.customer_route =
            rels(analysis.provider, best->learned_from) == RelKind::kCustomer;
        trie.insert(prefix, entry);
      });

  for (const SaPrefix& sa : analysis.sa_prefixes) {
    // Cases 1 and 2: covering-prefix scan.
    bool split = false;
    bool aggregatable = false;
    trie.for_each_covering(
        sa.prefix, [&](const bgp::Prefix& covering, const TrieEntry& entry) {
          if (covering == sa.prefix) return;
          if (entry.origin == sa.origin && entry.customer_route) split = true;
          if (entry.origin != sa.origin) aggregatable = true;
        });
    if (split) ++out.splitting;
    if (aggregatable) ++out.aggregating;

    // Case 3: how did the responsible customer treat its direct providers?
    const auto customer = responsible_customer(sa.origin, annotated);
    if (!customer) continue;
    const auto direct_providers = annotated.providers(*customer);
    // Only providers on this provider's customer side are relevant — those
    // are the ones whose announcement (or lack of it) explains the missing
    // customer route.
    std::vector<AsNumber> relevant;
    for (const AsNumber p : direct_providers) {
      if (p == analysis.provider ||
          annotated.in_customer_cone(analysis.provider, p)) {
        relevant.push_back(p);
      }
    }
    if (relevant.empty()) continue;
    const auto prefix_paths = paths.paths_for_prefix(sa.prefix);
    if (prefix_paths.empty()) continue;
    ++out.identified;
    bool announced = false;
    for (const auto path : prefix_paths) {
      for (std::size_t i = 0; i + 1 < path.size() && !announced; ++i) {
        if (path[i + 1] != *customer) continue;
        for (const AsNumber p : relevant) {
          if (path[i] == p) {
            announced = true;
            break;
          }
        }
      }
      if (announced) break;
    }
    if (announced) {
      ++out.announce_to_direct;
    } else {
      ++out.withheld_from_direct;
    }
  }

  out.percent_identified = util::percent(out.identified, out.sa_total);
  out.percent_announce = util::percent(out.announce_to_direct, out.identified);
  out.percent_withheld =
      util::percent(out.withheld_from_direct, out.identified);
  return out;
}

}  // namespace bgpolicy::core
