#include "core/import_inference.h"

#include <algorithm>

#include "util/stats.h"

namespace bgpolicy::core {

ImportTypicality analyze_import_typicality(const bgp::BgpTable& lg_table,
                                           const RelationshipOracle& rels) {
  ImportTypicality out;
  out.vantage = lg_table.owner();

  std::unordered_map<RelKind, std::vector<std::uint32_t>> seen_values;

  lg_table.for_each([&](const bgp::Prefix&,
                        std::span<const bgp::Route> routes) {
    // Partition this prefix's local preferences by neighbor class.
    std::optional<std::uint32_t> min_customer, max_peer, min_peer,
        max_provider;
    bool has_customer = false, has_peer = false, has_provider = false;
    for (const bgp::Route& route : routes) {
      const auto rel = rels(lg_table.owner(), route.learned_from);
      if (!rel) continue;
      const std::uint32_t lp = route.local_pref;
      seen_values[*rel].push_back(lp);
      switch (*rel) {
        case RelKind::kCustomer:
          has_customer = true;
          min_customer = std::min(min_customer.value_or(lp), lp);
          break;
        case RelKind::kPeer:
          has_peer = true;
          min_peer = std::min(min_peer.value_or(lp), lp);
          max_peer = std::max(max_peer.value_or(lp), lp);
          break;
        case RelKind::kProvider:
          has_provider = true;
          max_provider = std::max(max_provider.value_or(lp), lp);
          break;
      }
    }
    const int classes = static_cast<int>(has_customer) +
                        static_cast<int>(has_peer) +
                        static_cast<int>(has_provider);
    if (classes < 2) return;
    ++out.comparable_prefixes;

    // Typical (paper definition): customer strictly above peer and
    // provider; peer strictly above provider.
    bool typical = true;
    if (has_customer && has_peer && *min_customer <= *max_peer) typical = false;
    if (has_customer && has_provider && *min_customer <= *max_provider) {
      typical = false;
    }
    if (has_peer && has_provider && *min_peer <= *max_provider) typical = false;
    if (typical) ++out.typical_prefixes;
  });

  // Deduplicate the per-class value lists for reporting.
  for (auto& [kind, values] : seen_values) {
    std::sort(values.begin(), values.end());
    values.erase(std::unique(values.begin(), values.end()), values.end());
    out.class_values.emplace(kind, std::move(values));
  }
  out.percent_typical =
      util::percent(out.typical_prefixes, out.comparable_prefixes);
  return out;
}

IrrTypicality analyze_irr_typicality(const rpsl::AutNum& aut_num,
                                     const RelationshipOracle& rels) {
  IrrTypicality out;
  out.as = aut_num.as;

  struct NeighborPref {
    RelKind kind;
    std::uint32_t pref;  // RPSL pref: smaller is better
  };
  std::vector<NeighborPref> neighbors;
  for (const auto& line : aut_num.imports) {
    if (!line.pref) continue;
    const auto rel = rels(aut_num.as, line.from);
    if (!rel) continue;
    neighbors.push_back({*rel, *line.pref});
  }
  out.neighbors_with_pref = neighbors.size();

  // Typical ordering in pref space (inverted): customer < peer < provider.
  const auto rank = [](RelKind kind) {
    switch (kind) {
      case RelKind::kCustomer: return 0;
      case RelKind::kPeer: return 1;
      case RelKind::kProvider: return 2;
    }
    return 1;
  };
  for (std::size_t i = 0; i < neighbors.size(); ++i) {
    for (std::size_t j = i + 1; j < neighbors.size(); ++j) {
      const auto& a = neighbors[i];
      const auto& b = neighbors[j];
      if (a.kind == b.kind) continue;
      ++out.comparable_pairs;
      const bool a_better_class = rank(a.kind) < rank(b.kind);
      const bool typical =
          a_better_class ? a.pref < b.pref : b.pref < a.pref;
      if (typical) ++out.typical_pairs;
    }
  }
  out.percent_typical = util::percent(out.typical_pairs, out.comparable_pairs);
  return out;
}

bool irr_object_usable(const rpsl::AutNum& aut_num, std::uint32_t min_year,
                       std::size_t min_neighbors) {
  if (aut_num.changed_date / 10000 < min_year) return false;
  return aut_num.imports.size() >= min_neighbors;
}

}  // namespace bgpolicy::core
