#include "core/homing.h"

#include <unordered_set>

#include "util/stats.h"

namespace bgpolicy::core {

HomingDistribution analyze_homing(const SaAnalysis& analysis,
                                  const topo::AsGraph& annotated) {
  HomingDistribution out;
  out.provider = analysis.provider;

  std::unordered_set<AsNumber> origins;
  for (const SaPrefix& sa : analysis.sa_prefixes) origins.insert(sa.origin);

  for (const AsNumber origin : origins) {
    const std::size_t providers =
        annotated.contains(origin) ? annotated.providers(origin).size() : 0;
    if (providers >= 2) {
      ++out.multihomed_ases;
    } else {
      ++out.singlehomed_ases;
    }
  }
  const std::size_t total = out.multihomed_ases + out.singlehomed_ases;
  out.percent_multihomed = util::percent(out.multihomed_ases, total);
  out.percent_singlehomed = util::percent(out.singlehomed_ases, total);
  return out;
}

}  // namespace bgpolicy::core
