#include "rpsl/generator.h"

#include <optional>
#include <sstream>
#include <vector>

#include "util/parallel.h"
#include "util/rng.h"

namespace bgpolicy::rpsl {

namespace {

/// Every random decision for one registered aut-num, drawn in the single
/// sequential RNG pass so the rendered database is byte-identical to the
/// pre-sharding generator at any thread count.
struct AutNumPlan {
  util::AsNumber as;
  bool stale = false;
  /// Final LOCAL_PREF per neighbor in topo.graph.neighbors(as) order;
  /// nullopt = the import line is registered without a pref action.
  std::vector<std::optional<std::uint32_t>> import_pref;
};

std::string render_block(const topo::Topology& topo,
                         const sim::PolicySet& policies,
                         const IrrGenParams& params, const AutNumPlan& plan) {
  const auto as = plan.as;
  const auto& policy = policies.at(as);
  std::ostringstream out;

  out << "aut-num: AS" << as.value() << "\n";
  out << "as-name: " << topo::to_string(topo.tier_of(as)) << "-" << as.value()
      << "\n";

  std::size_t neighbor_index = 0;
  for (const auto& neighbor : topo.graph.neighbors(as)) {
    out << "import: from AS" << neighbor.as.value();
    if (const auto lp = plan.import_pref[neighbor_index]; lp.has_value()) {
      out << " action pref = " << pref_from_local_pref(*lp) << ";";
    }
    out << " accept ANY\n";
    ++neighbor_index;
  }
  for (const auto& neighbor : topo.graph.neighbors(as)) {
    out << "export: to AS" << neighbor.as.value() << " announce AS"
        << as.value() << "\n";
  }

  if (policy.community.enabled && policy.community.published) {
    const auto& profile = policy.community;
    const auto width =
        static_cast<std::uint16_t>(profile.values_per_class * 10);
    const auto emit_range = [&](const char* kind, std::uint16_t base) {
      out << "remarks: rel-community " << kind << " " << base << " "
          << (base + width - 1) << "\n";
    };
    emit_range("peer", profile.peer_base);
    emit_range("provider", profile.provider_base);
    emit_range("customer", profile.customer_base);
  }

  out << "mnt-by: MAINT-AS" << as.value() << "\n";
  out << "changed: noc@as" << as.value() << ".example.net "
      << (plan.stale ? params.stale_date : params.fresh_date) << "\n";
  out << "source: SYNTH\n\n";
  return out.str();
}

}  // namespace

std::string generate_irr(const topo::Topology& topo,
                         const sim::PolicySet& policies,
                         const IrrGenParams& params,
                         const util::Executor* executor) {
  // Pass 1 (sequential): replicate the exact RNG draw order of the
  // pre-sharding generator — coverage, staleness, then per-import
  // missing-pref / wrong-pref decisions — into per-AS plans.
  util::Rng rng(params.seed);
  std::vector<AutNumPlan> plans;
  for (const auto as : topo.graph.ases()) {
    if (!rng.chance(params.coverage)) continue;
    const auto& policy = policies.at(as);
    AutNumPlan plan;
    plan.as = as;
    plan.stale = rng.chance(params.stale_prob);
    for (const auto& neighbor : topo.graph.neighbors(as)) {
      if (rng.chance(params.missing_pref_prob)) {
        plan.import_pref.emplace_back(std::nullopt);
        continue;
      }
      std::uint32_t lp = policy.import.base_for(neighbor.kind);
      if (const auto it = policy.import.neighbor_override.find(neighbor.as);
          it != policy.import.neighbor_override.end()) {
        lp = it->second;
      }
      if (rng.chance(params.wrong_pref_prob)) {
        lp = static_cast<std::uint32_t>(50 + rng.index(120));
      }
      plan.import_pref.emplace_back(lp);
    }
    plans.push_back(std::move(plan));
  }

  // Pass 2: render blocks (RNG-free, pure per AS) sharded across workers,
  // concatenated in AS order — byte-identical at any thread count.
  std::string out = "# synthetic IRR database (bgpolicy reproduction)\n\n";
  std::unique_ptr<util::Executor> owned;
  const util::Executor& exec =
      util::executor_or(executor, params.threads, plans.size(), owned);
  util::shard_and_merge(
      exec, plans.size(),
      [&](std::size_t i) {
        return render_block(topo, policies, params, plans[i]);
      },
      [&](std::size_t, std::string& block) { out += block; });
  return out;
}

}  // namespace bgpolicy::rpsl
