#include "rpsl/generator.h"

#include <sstream>

#include "util/rng.h"

namespace bgpolicy::rpsl {

std::string generate_irr(const topo::Topology& topo,
                         const sim::PolicySet& policies,
                         const IrrGenParams& params) {
  util::Rng rng(params.seed);
  std::ostringstream out;
  out << "# synthetic IRR database (bgpolicy reproduction)\n\n";

  for (const auto as : topo.graph.ases()) {
    if (!rng.chance(params.coverage)) continue;
    const auto& policy = policies.at(as);
    const bool stale = rng.chance(params.stale_prob);

    out << "aut-num: AS" << as.value() << "\n";
    out << "as-name: " << topo::to_string(topo.tier_of(as)) << "-"
        << as.value() << "\n";

    for (const auto& neighbor : topo.graph.neighbors(as)) {
      out << "import: from AS" << neighbor.as.value();
      if (!rng.chance(params.missing_pref_prob)) {
        std::uint32_t lp = policy.import.base_for(neighbor.kind);
        if (const auto it = policy.import.neighbor_override.find(neighbor.as);
            it != policy.import.neighbor_override.end()) {
          lp = it->second;
        }
        if (rng.chance(params.wrong_pref_prob)) {
          lp = static_cast<std::uint32_t>(50 + rng.index(120));
        }
        out << " action pref = " << pref_from_local_pref(lp) << ";";
      }
      out << " accept ANY\n";
    }
    for (const auto& neighbor : topo.graph.neighbors(as)) {
      out << "export: to AS" << neighbor.as.value() << " announce AS"
          << as.value() << "\n";
    }

    if (policy.community.enabled && policy.community.published) {
      const auto& profile = policy.community;
      const auto width =
          static_cast<std::uint16_t>(profile.values_per_class * 10);
      const auto emit_range = [&](const char* kind, std::uint16_t base) {
        out << "remarks: rel-community " << kind << " " << base << " "
            << (base + width - 1) << "\n";
      };
      emit_range("peer", profile.peer_base);
      emit_range("provider", profile.provider_base);
      emit_range("customer", profile.customer_base);
    }

    out << "mnt-by: MAINT-AS" << as.value() << "\n";
    out << "changed: noc@as" << as.value() << ".example.net "
        << (stale ? params.stale_date : params.fresh_date) << "\n";
    out << "source: SYNTH\n\n";
  }
  return out.str();
}

}  // namespace bgpolicy::rpsl
