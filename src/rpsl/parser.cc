#include "rpsl/parser.h"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <iterator>

namespace bgpolicy::rpsl {

namespace {

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

bool consume_keyword(std::string_view& s, std::string_view keyword) {
  s = trim(s);
  if (s.size() < keyword.size()) return false;
  for (std::size_t i = 0; i < keyword.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(s[i])) !=
        std::tolower(static_cast<unsigned char>(keyword[i]))) {
      return false;
    }
  }
  s.remove_prefix(keyword.size());
  return true;
}

std::optional<std::uint32_t> consume_number(std::string_view& s) {
  s = trim(s);
  std::uint32_t value = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc{} || ptr == s.data()) return std::nullopt;
  s.remove_prefix(static_cast<std::size_t>(ptr - s.data()));
  return value;
}

std::optional<AsNumber> consume_as(std::string_view& s) {
  if (!consume_keyword(s, "AS")) return std::nullopt;
  const auto number = consume_number(s);
  if (!number) return std::nullopt;
  return AsNumber(*number);
}

}  // namespace

std::vector<Object> parse_database(std::string_view text) {
  std::vector<Object> objects;
  Object current;

  const auto flush = [&] {
    if (!current.attributes.empty()) {
      objects.push_back(std::move(current));
      current = Object{};
    }
  };

  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t eol = std::min(text.find('\n', pos), text.size());
    std::string_view line = text.substr(pos, eol - pos);
    pos = eol + 1;

    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    const std::string_view trimmed = trim(line);
    if (trimmed.empty()) {
      flush();
      if (pos > text.size()) break;
      continue;
    }
    if (trimmed.front() == '#' || trimmed.front() == '%') continue;

    // Continuation line: starts with whitespace or '+'.
    if ((std::isspace(static_cast<unsigned char>(line.front())) != 0 ||
         line.front() == '+') &&
        !current.attributes.empty()) {
      std::string_view continuation = trimmed;
      if (!continuation.empty() && continuation.front() == '+') {
        continuation.remove_prefix(1);
        continuation = trim(continuation);
      }
      current.attributes.back().value += ' ';
      current.attributes.back().value += continuation;
      continue;
    }

    const std::size_t colon = line.find(':');
    if (colon == std::string_view::npos) continue;  // malformed; skip
    std::string name(trim(line.substr(0, colon)));
    std::transform(name.begin(), name.end(), name.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    current.attributes.push_back(
        {std::move(name), std::string(trim(line.substr(colon + 1)))});
    if (pos > text.size()) break;
  }
  flush();
  return objects;
}

std::optional<ImportLine> parse_import_line(std::string_view value) {
  std::string_view s = value;
  if (!consume_keyword(s, "from")) return std::nullopt;
  const auto from = consume_as(s);
  if (!from) return std::nullopt;

  ImportLine line;
  line.from = *from;

  if (consume_keyword(s, "action")) {
    if (!consume_keyword(s, "pref")) return std::nullopt;
    if (!consume_keyword(s, "=")) return std::nullopt;
    const auto pref = consume_number(s);
    if (!pref) return std::nullopt;
    line.pref = *pref;
    if (!consume_keyword(s, ";")) return std::nullopt;
  }
  if (consume_keyword(s, "accept")) {
    line.accept = std::string(trim(s));
  }
  return line;
}

std::optional<CommunityRemark> parse_community_remark(std::string_view value) {
  std::string_view s = value;
  if (!consume_keyword(s, "rel-community")) return std::nullopt;
  CommunityRemark remark;
  if (consume_keyword(s, "customer")) {
    remark.kind = RelKind::kCustomer;
  } else if (consume_keyword(s, "peer")) {
    remark.kind = RelKind::kPeer;
  } else if (consume_keyword(s, "provider")) {
    remark.kind = RelKind::kProvider;
  } else {
    return std::nullopt;
  }
  const auto lo = consume_number(s);
  const auto hi = consume_number(s);
  if (!lo || !hi || *lo > 0xFFFF || *hi > 0xFFFF || *lo > *hi) {
    return std::nullopt;
  }
  remark.value_lo = static_cast<std::uint16_t>(*lo);
  remark.value_hi = static_cast<std::uint16_t>(*hi);
  return remark;
}

std::optional<AutNum> parse_aut_num(const Object& object) {
  if (object.class_name() != "aut-num") return std::nullopt;
  const auto as_text = object.first("aut-num");
  if (!as_text) return std::nullopt;
  std::string_view s = *as_text;
  const auto as = consume_as(s);
  if (!as) return std::nullopt;

  AutNum out;
  out.as = *as;
  out.as_name = object.first("as-name").value_or("");
  for (const auto& value : object.all("import")) {
    if (auto line = parse_import_line(value)) out.imports.push_back(*line);
  }
  for (const auto& value : object.all("export")) {
    std::string_view e = value;
    if (!consume_keyword(e, "to")) continue;
    const auto to = consume_as(e);
    if (!to) continue;
    ExportLine export_line;
    export_line.to = *to;
    if (consume_keyword(e, "announce")) {
      export_line.announce = std::string(trim(e));
    }
    out.exports.push_back(std::move(export_line));
  }
  for (const auto& value : object.all("remarks")) {
    if (auto remark = parse_community_remark(value)) {
      out.community_remarks.push_back(*remark);
    }
  }
  for (const auto& value : object.all("changed")) {
    // "user@example.net 20021118" — take the trailing date.
    const std::size_t space = value.find_last_of(' ');
    std::string_view date =
        space == std::string::npos ? std::string_view(value)
                                   : std::string_view(value).substr(space + 1);
    std::uint32_t parsed = 0;
    const auto [ptr, ec] =
        std::from_chars(date.data(), date.data() + date.size(), parsed);
    if (ec == std::errc{} && ptr == date.data() + date.size()) {
      out.changed_date = std::max(out.changed_date, parsed);
    }
  }
  return out;
}

std::vector<AutNum> parse_aut_nums(std::string_view text) {
  std::vector<AutNum> out;
  for (const Object& object : parse_database(text)) {
    if (auto aut_num = parse_aut_num(object)) out.push_back(std::move(*aut_num));
  }
  return out;
}

namespace {

/// Splits the dump into the blank-line-separated line runs where
/// parse_database flushes its current object.  Parsing each run on its own
/// therefore yields exactly the objects the sequential parser would emit
/// for that stretch of text, in order — the boundary scan is sequential
/// and cheap, the per-block attribute parsing is the work worth sharding.
std::vector<std::string_view> split_object_blocks(std::string_view text) {
  std::vector<std::string_view> blocks;
  std::optional<std::size_t> block_start;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t eol = std::min(text.find('\n', pos), text.size());
    std::string_view line = text.substr(pos, eol - pos);
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    const bool blank = trim(line).empty();
    if (blank) {
      if (block_start) {
        blocks.push_back(text.substr(*block_start, pos - *block_start));
        block_start.reset();
      }
    } else if (!block_start) {
      block_start = pos;
    }
    pos = eol + 1;
    if (eol == text.size()) break;
  }
  if (block_start) blocks.push_back(text.substr(*block_start));
  return blocks;
}

}  // namespace

std::vector<AutNum> parse_aut_nums(std::string_view text, std::size_t threads,
                                   const util::Executor* executor) {
  const std::vector<std::string_view> blocks = split_object_blocks(text);

  std::unique_ptr<util::Executor> owned;
  const util::Executor& exec =
      util::executor_or(executor, threads, blocks.size(), owned);
  // Blocks are tiny (one object each); shard contiguous ranges of them so
  // per-task overhead stays negligible, and concatenate range results in
  // range order — byte-identical to the sequential parse.
  const std::vector<util::IndexRange> ranges = util::split_ranges(
      blocks.size(), std::max<std::size_t>(1, exec.threads() * 4));

  std::vector<AutNum> out;
  util::shard_and_merge(
      exec, ranges.size(),
      [&](std::size_t r) {
        std::vector<AutNum> local;
        for (std::size_t i = ranges[r].begin; i < ranges[r].end; ++i) {
          for (const Object& object : parse_database(blocks[i])) {
            if (auto aut_num = parse_aut_num(object)) {
              local.push_back(std::move(*aut_num));
            }
          }
        }
        return local;
      },
      [&](std::size_t, std::vector<AutNum>& local) {
        out.insert(out.end(), std::make_move_iterator(local.begin()),
                   std::make_move_iterator(local.end()));
      });
  return out;
}

}  // namespace bgpolicy::rpsl
