// RPSL (Routing Policy Specification Language) object model — the subset
// the paper's IRR analysis needs (Section 4.1, Table 3): aut-num objects
// with import lines carrying `pref` actions, plus relationship-community
// remarks of the kind ASes publish (Appendix, Table 11).
//
// Note RPSL `pref` is inverted relative to BGP LOCAL_PREF: smaller pref is
// more preferred (paper footnote 2).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "topology/as_graph.h"
#include "util/ids.h"

namespace bgpolicy::rpsl {

using topo::RelKind;
using util::AsNumber;

/// One "attribute: value" line of an RPSL object (continuation lines are
/// folded by the parser).
struct Attribute {
  std::string name;
  std::string value;
};

/// A generic RPSL object: its class is the name of the first attribute.
struct Object {
  std::vector<Attribute> attributes;

  [[nodiscard]] std::string class_name() const {
    return attributes.empty() ? std::string{} : attributes.front().name;
  }
  [[nodiscard]] std::optional<std::string> first(const std::string& name) const;
  [[nodiscard]] std::vector<std::string> all(const std::string& name) const;
};

/// "import: from AS2 action pref = 10; accept ANY"
struct ImportLine {
  AsNumber from;
  std::optional<std::uint32_t> pref;
  std::string accept = "ANY";
  friend bool operator==(const ImportLine&, const ImportLine&) = default;
};

/// "export: to AS2 announce AS1"
struct ExportLine {
  AsNumber to;
  std::string announce;
  friend bool operator==(const ExportLine&, const ExportLine&) = default;
};

/// "remarks: rel-community <class> <lo> <hi>" — a published community range
/// meaning "routes received from <class> carry values in [lo, hi]".
struct CommunityRemark {
  RelKind kind;
  std::uint16_t value_lo = 0;
  std::uint16_t value_hi = 0;
  friend bool operator==(const CommunityRemark&, const CommunityRemark&) =
      default;
};

struct AutNum {
  AsNumber as;
  std::string as_name;
  std::vector<ImportLine> imports;
  std::vector<ExportLine> exports;
  std::vector<CommunityRemark> community_remarks;
  /// YYYYMMDD from the last "changed" attribute; 0 when absent.
  std::uint32_t changed_date = 0;

  friend bool operator==(const AutNum&, const AutNum&) = default;
};

}  // namespace bgpolicy::rpsl
