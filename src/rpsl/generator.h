// IRR database generation from simulated policies.
//
// Substitute for the RADB mirror snapshot the paper downloaded (Nov. 25,
// 2002).  Real IRR data is incomplete and partially stale — the paper
// filters out ASes not updated during 2002 — so the generator models
// coverage gaps, stale objects, and outright wrong entries explicitly.
#pragma once

#include <cstdint>
#include <string>

#include "sim/policy.h"
#include "topology/topology_gen.h"
#include "util/parallel.h"

namespace bgpolicy::rpsl {

struct IrrGenParams {
  std::uint64_t seed = 20021125;
  /// Probability an AS has an aut-num object at all.
  double coverage = 0.65;
  /// Probability a present object was last touched before 2002 (the paper's
  /// freshness filter discards these).
  double stale_prob = 0.25;
  /// Per import line: probability the registered pref contradicts the AS's
  /// real configuration (out-of-date registry entry).
  double wrong_pref_prob = 0.03;
  /// Probability an import line is registered without any pref action.
  double missing_pref_prob = 0.10;
  std::uint32_t fresh_date = 20021015;
  std::uint32_t stale_date = 20010612;
  /// Worker-thread count for rendering aut-num blocks (0 = hardware
  /// concurrency, 1 = sequential).  Every random decision is drawn in one
  /// sequential pass first, then blocks are rendered in parallel and
  /// concatenated in AS order, so the output is byte-identical at any
  /// value.  Excluded from the staged-experiment cache key for the same
  /// reason.
  std::size_t threads = 1;

  friend bool operator==(const IrrGenParams&, const IrrGenParams&) = default;
};

/// Renders a whois-style flat-file IRR database for the given topology and
/// ground-truth policies.  RPSL pref is emitted as (1000 - LOCAL_PREF), so
/// smaller pref = more preferred, matching RPSL semantics.  When
/// `executor` is given it supplies the shared rendering pool and
/// `params.threads` is ignored.
[[nodiscard]] std::string generate_irr(const topo::Topology& topo,
                                       const sim::PolicySet& policies,
                                       const IrrGenParams& params = {},
                                       const util::Executor* executor = nullptr);

/// The pref value the generator writes for a given LOCAL_PREF.
[[nodiscard]] constexpr std::uint32_t pref_from_local_pref(std::uint32_t lp) {
  return lp >= 1000 ? 0 : 1000 - lp;
}

}  // namespace bgpolicy::rpsl
