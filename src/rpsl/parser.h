// RPSL database parsing.
//
// Handles the whois-style flat-file layout the RADB mirror used: objects
// separated by blank lines, "name: value" attributes, '+'-or-whitespace
// continuation lines, '#' comments.  Malformed attribute lines inside an
// otherwise valid object are skipped (real IRR dumps are messy; the paper
// explicitly treats the IRR as partially unusable).
#pragma once

#include <optional>
#include <string_view>
#include <vector>

#include "rpsl/rpsl.h"
#include "util/parallel.h"

namespace bgpolicy::rpsl {

/// Splits a database dump into raw objects.
[[nodiscard]] std::vector<Object> parse_database(std::string_view text);

/// Interprets an object as aut-num; nullopt when it is a different class or
/// has no parsable AS number.
[[nodiscard]] std::optional<AutNum> parse_aut_num(const Object& object);

/// Parses every aut-num in a database dump (sequential).
[[nodiscard]] std::vector<AutNum> parse_aut_nums(std::string_view text);

/// Parses every aut-num in a database dump with object parsing sharded
/// across `threads` workers (0 = hardware concurrency, 1 = the exact
/// sequential program).  The dump is split sequentially at the blank-line
/// object boundaries where the sequential parser flushes, the blocks are
/// parsed in parallel, and results are concatenated in text order — output
/// identical at any thread count.  When `executor` is given it supplies
/// the shared pool and `threads` is ignored.
[[nodiscard]] std::vector<AutNum> parse_aut_nums(
    std::string_view text, std::size_t threads,
    const util::Executor* executor = nullptr);

/// Parses one import policy value, e.g. "from AS2 action pref = 10; accept
/// ANY" (the action part is optional).  Exposed for tests.
[[nodiscard]] std::optional<ImportLine> parse_import_line(
    std::string_view value);

/// Parses "rel-community <customer|peer|provider> <lo> <hi>".
[[nodiscard]] std::optional<CommunityRemark> parse_community_remark(
    std::string_view value);

}  // namespace bgpolicy::rpsl
