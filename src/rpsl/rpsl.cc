#include "rpsl/rpsl.h"

namespace bgpolicy::rpsl {

std::optional<std::string> Object::first(const std::string& name) const {
  for (const auto& attr : attributes) {
    if (attr.name == name) return attr.value;
  }
  return std::nullopt;
}

std::vector<std::string> Object::all(const std::string& name) const {
  std::vector<std::string> out;
  for (const auto& attr : attributes) {
    if (attr.name == name) out.push_back(attr.value);
  }
  return out;
}

}  // namespace bgpolicy::rpsl
