// Precondition/invariant checking helpers.
//
// `ensure` is for conditions that depend on inputs (throws, recoverable);
// use plain assert for internal logic errors.  Keeping this a function (not
// a macro) follows ES.31, at the cost of always-evaluated messages — call
// sites keep messages to cheap literals.
#pragma once

#include <stdexcept>
#include <string>

namespace bgpolicy::util {

/// Throws std::invalid_argument when `condition` is false.
inline void ensure(bool condition, const char* message) {
  if (!condition) throw std::invalid_argument(message);
}

/// Throws std::runtime_error when `condition` is false; for violated
/// environmental/runtime expectations rather than caller mistakes.
inline void ensure_state(bool condition, const char* message) {
  if (!condition) throw std::runtime_error(message);
}

}  // namespace bgpolicy::util
