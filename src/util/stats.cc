#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

namespace bgpolicy::util {

namespace {

double percentile(std::span<const double> sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

}  // namespace

Summary summarize(std::span<const double> values) {
  Summary s;
  s.count = values.size();
  if (values.empty()) return s;
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  s.min = sorted.front();
  s.max = sorted.back();
  s.mean = std::accumulate(sorted.begin(), sorted.end(), 0.0) /
           static_cast<double>(sorted.size());
  s.median = percentile(sorted, 0.5);
  s.p90 = percentile(sorted, 0.9);
  return s;
}

double percent(std::size_t part, std::size_t whole) {
  if (whole == 0) return 0.0;
  return 100.0 * static_cast<double>(part) / static_cast<double>(whole);
}

void Histogram::add(std::int64_t key, std::uint64_t weight) {
  bins_[key] += weight;
  total_ += weight;
}

std::uint64_t Histogram::at(std::int64_t key) const {
  const auto it = bins_.find(key);
  return it == bins_.end() ? 0 : it->second;
}

RankSeries RankSeries::from(std::string label, std::vector<std::uint64_t> raw) {
  std::sort(raw.begin(), raw.end(), std::greater<>());
  return RankSeries{std::move(label), std::move(raw)};
}

std::string render_rank_series(const RankSeries& series, std::size_t max_rows) {
  std::ostringstream out;
  out << series.label << " (" << series.values.size() << " next-hop ASs)\n";
  if (series.values.empty() || max_rows == 0) return out.str();
  // Sample ranks roughly logarithmically, as Fig. 9 uses log-log axes.
  std::vector<std::size_t> ranks;
  std::size_t r = 1;
  while (r <= series.values.size() && ranks.size() < max_rows) {
    ranks.push_back(r);
    const auto next = static_cast<std::size_t>(
        std::ceil(static_cast<double>(r) * 1.9));
    r = std::max(next, r + 1);
  }
  if (ranks.back() != series.values.size()) ranks.push_back(series.values.size());
  const double log_max = std::log10(
      static_cast<double>(std::max<std::uint64_t>(series.values.front(), 1)) +
      1.0);
  for (const std::size_t rank : ranks) {
    const std::uint64_t v = series.values[rank - 1];
    const double frac =
        log_max <= 0.0
            ? 0.0
            : std::log10(static_cast<double>(v) + 1.0) / log_max;
    const auto bar = static_cast<std::size_t>(frac * 40.0);
    out << "  rank " << rank << "\t" << v << "\t"
        << std::string(bar, '#') << "\n";
  }
  return out.str();
}

}  // namespace bgpolicy::util
