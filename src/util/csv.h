// Minimal CSV writer; benches optionally mirror their tables to CSV so the
// series can be re-plotted outside the terminal.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace bgpolicy::util {

/// RFC-4180-ish CSV writer over any ostream.  Quotes cells that contain
/// commas, quotes, or newlines.
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& out) : out_(&out) {}

  void write_row(const std::vector<std::string>& cells);

 private:
  std::ostream* out_;
};

/// Escapes one CSV cell (exposed for testing).
[[nodiscard]] std::string csv_escape(const std::string& cell);

}  // namespace bgpolicy::util
