// ASCII table rendering for reproducing the paper's tables on stdout.
#pragma once

#include <string>
#include <vector>

namespace bgpolicy::util {

/// Column-aligned text table.  Cells are strings; numeric formatting is the
/// caller's business (each paper table has its own precision conventions).
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Adds a row; must have exactly as many cells as the header.
  void add_row(std::vector<std::string> cells);

  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }

  /// Renders with a title line, a header, a separator, and the rows.
  [[nodiscard]] std::string render(const std::string& title = {}) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `digits` digits after the decimal point.
[[nodiscard]] std::string fmt(double value, int digits = 1);

/// Formats "count (pct%)" cells as used in the paper's Tables 6 and 8.
[[nodiscard]] std::string fmt_count_pct(std::size_t count, double pct);

}  // namespace bgpolicy::util
