#include "util/parallel.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace bgpolicy::util {

std::size_t resolve_threads(std::size_t requested) {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

std::vector<IndexRange> split_ranges(std::size_t n, std::size_t parts) {
  std::vector<IndexRange> ranges;
  if (n == 0) return ranges;
  parts = std::max<std::size_t>(1, std::min(parts, n));
  ranges.reserve(parts);
  const std::size_t base = n / parts;
  const std::size_t remainder = n % parts;
  std::size_t begin = 0;
  for (std::size_t r = 0; r < parts; ++r) {
    const std::size_t size = base + (r < remainder ? 1 : 0);
    ranges.push_back({begin, begin + size});
    begin += size;
  }
  return ranges;
}

/// State for one parallel_for call, shared by every participating thread.
struct ThreadPool::Batch {
  const std::function<void(std::size_t)>* fn = nullptr;
  std::size_t n = 0;
  std::size_t grain = 1;
  std::atomic<std::size_t> cursor{0};
  /// Workers still inside run_chunks; the caller waits for 0.
  std::size_t active = 0;
  std::exception_ptr error;  // first failure wins, guarded by pool mutex_
};

ThreadPool::ThreadPool(std::size_t threads) {
  const std::size_t workers = threads > 1 ? threads - 1 : 0;
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::run_chunks(Batch& batch) {
  while (true) {
    const std::size_t begin = batch.cursor.fetch_add(batch.grain);
    if (begin >= batch.n) return;
    const std::size_t end = std::min(begin + batch.grain, batch.n);
    for (std::size_t i = begin; i < end; ++i) (*batch.fn)(i);
  }
}

void ThreadPool::worker_loop() {
  std::uint64_t seen_epoch = 0;
  while (true) {
    Batch* batch = nullptr;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_ready_.wait(lock, [&] {
        return stop_ || (batch_ != nullptr && batch_epoch_ != seen_epoch);
      });
      if (stop_) return;
      seen_epoch = batch_epoch_;
      batch = batch_;
      ++batch->active;
    }
    std::exception_ptr error;
    try {
      run_chunks(*batch);
    } catch (...) {
      error = std::current_exception();
    }
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (error && !batch->error) {
        batch->error = error;
        batch->cursor.store(batch->n);  // drain: skip remaining indices
      }
      --batch->active;
    }
    batch_done_.notify_all();
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn,
                              std::size_t grain) {
  if (n == 0) return;
  Batch batch;
  batch.fn = &fn;
  batch.n = n;
  batch.grain = std::max<std::size_t>(1, grain);

  if (!workers_.empty()) {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      batch_ = &batch;
      ++batch_epoch_;
    }
    work_ready_.notify_all();
  }

  // The calling thread always participates; with zero workers this is a
  // plain in-order loop.
  std::exception_ptr error;
  try {
    run_chunks(batch);
  } catch (...) {
    error = std::current_exception();
  }

  std::unique_lock<std::mutex> lock(mutex_);
  if (error && !batch.error) {
    batch.error = error;
    batch.cursor.store(batch.n);
  }
  if (!workers_.empty()) {
    batch_ = nullptr;  // workers that have not joined yet will see no work
    batch_done_.wait(lock, [&batch] { return batch.active == 0; });
  }
  if (batch.error) std::rethrow_exception(batch.error);
}

void parallel_for(std::size_t threads, std::size_t n,
                  const std::function<void(std::size_t)>& fn,
                  std::size_t grain) {
  threads = std::min(resolve_threads(threads), n);  // 0 = hw; no idle workers
  if (threads <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  ThreadPool pool(threads);
  pool.parallel_for(n, fn, grain);
}

void parallel_for(const Executor& executor, std::size_t n,
                  const std::function<void(std::size_t)>& fn,
                  std::size_t grain) {
  ThreadPool* pool = executor.pool();
  if (pool == nullptr || n <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  pool->parallel_for(n, fn, grain);
}

// -------------------------------------------------------------- task graph --

TaskGraph::NodeId TaskGraph::add_locked(std::function<void()>&& fn,
                                        std::span<const NodeId> deps) {
  const NodeId id = nodes_.size();
  // Validate every dependency before touching any dependents list: a
  // rejected dep must not leave the about-to-not-exist node id dangling
  // in an earlier dep's dependents (execute() would index past nodes_).
  for (const NodeId dep : deps) {
    if (dep >= id) {
      throw std::logic_error("TaskGraph: dependency on an unknown node");
    }
  }
  Node node;
  node.fn = std::move(fn);
  for (const NodeId dep : deps) {
    if (nodes_[dep].state == NodeState::kDone) continue;
    nodes_[dep].dependents.push_back(id);
    ++node.pending;
  }
  if (node.pending == 0) {
    node.state = NodeState::kReady;
    ready_.insert(id);
  }
  nodes_.push_back(std::move(node));
  return id;
}

TaskGraph::NodeId TaskGraph::add(std::function<void()> fn,
                                 std::span<const NodeId> deps) {
  return add_locked(std::move(fn), deps);
}

TaskGraph::NodeId TaskGraph::add(std::function<void()> fn,
                                 std::initializer_list<NodeId> deps) {
  return add(std::move(fn), std::span<const NodeId>(deps.begin(), deps.size()));
}

TaskGraph::NodeId TaskGraph::submit(std::function<void()> fn,
                                    std::span<const NodeId> deps) {
  NodeId id;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    id = add_locked(std::move(fn), deps);
  }
  cv_.notify_all();
  return id;
}

TaskGraph::NodeId TaskGraph::submit(std::function<void()> fn,
                                    std::initializer_list<NodeId> deps) {
  return submit(std::move(fn),
                std::span<const NodeId>(deps.begin(), deps.size()));
}

void TaskGraph::execute(NodeId id, std::unique_lock<std::mutex>& lock) {
  ready_.erase(id);
  nodes_[id].state = NodeState::kRunning;
  // Move the task body out: the unlocked fn may submit new nodes, growing
  // (and reallocating) nodes_, so no reference into it survives the call.
  std::function<void()> fn = std::move(nodes_[id].fn);
  nodes_[id].fn = nullptr;
  ++executing_;
  // Failure propagation: once any task failed (or a cycle bailed the run),
  // every not-yet-started node is skipped — its fn never runs.
  const bool skip = error_ != nullptr || bail_;
  if (!skip) {
    lock.unlock();
    std::exception_ptr failure;
    try {
      fn();
    } catch (...) {
      failure = std::current_exception();
    }
    lock.lock();
    if (failure && !error_) error_ = failure;
  }
  fn = nullptr;  // release captures eagerly (still outside any caller state)
  Node& node = nodes_[id];  // re-resolve: nodes_ may have grown
  node.state = NodeState::kDone;
  --executing_;
  ++done_;
  for (const NodeId dependent : node.dependents) {
    Node& next = nodes_[dependent];
    if (--next.pending == 0 && next.state == NodeState::kWaiting) {
      next.state = NodeState::kReady;
      ready_.insert(dependent);
    }
  }
  // Completions, newly ready nodes, and the drain condition all matter to
  // schedulers and waiters alike.
  cv_.notify_all();
}

bool TaskGraph::satisfied_locked(const Waiter& waiter) const {
  for (std::size_t i = 0; i < waiter.count; ++i) {
    const NodeId id = waiter.ids[i];
    if (id >= nodes_.size() || nodes_[id].state != NodeState::kDone) {
      return false;
    }
  }
  return true;
}

bool TaskGraph::deadlocked_locked() const {
  if (!ready_.empty() || finished_locked() || bail_ || error_) return false;
  // Progress is possible while some thread's *innermost* frame is running
  // task code.  executing_ counts every frame on a stack; frames blocked
  // in wait() (stalled_) and wait() frames currently running a loaned
  // node (loaning_ — ancestors of a counted inner frame) are not
  // independent progress.
  if (executing_ != stalled_ + loaning_) return false;
  for (const Waiter* waiter : waiters_) {
    if (satisfied_locked(*waiter)) return false;  // pending its wakeup
  }
  return true;
}

void TaskGraph::scheduler_loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    if (finished_locked() || bail_) return;
    if (!ready_.empty()) {
      execute(*ready_.begin(), lock);
      continue;
    }
    // Nothing ready and nothing able to make progress: the remaining
    // nodes can never become ready — a dependency cycle.
    if (deadlocked_locked()) {
      if (!error_) {
        error_ = std::make_exception_ptr(
            std::logic_error("TaskGraph: dependency cycle"));
      }
      bail_ = true;
      cv_.notify_all();
      return;
    }
    cv_.wait(lock, [&] {
      return finished_locked() || bail_ || !ready_.empty() ||
             deadlocked_locked();
    });
  }
}

void TaskGraph::run(const Executor& executor) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (nodes_.empty()) return;
  }
  ThreadPool* pool = executor.pool();
  if (pool == nullptr) {
    scheduler_loop();
  } else {
    // One scheduler instance per thread; parallel_for's caller thread
    // participates, and every instance returns once the graph drains.
    pool->parallel_for(pool->size(), [this](std::size_t) { scheduler_loop(); });
  }
  const std::lock_guard<std::mutex> lock(mutex_);
  if (error_) std::rethrow_exception(error_);
}

void TaskGraph::wait(std::span<const NodeId> ids) {
  std::unique_lock<std::mutex> lock(mutex_);
  const Waiter me{ids.data(), ids.size()};
  while (true) {
    if (error_ || bail_) {
      // The graph is unwinding; awaited results either never ran or are
      // about to be discarded — cancellation outranks satisfaction.
      throw std::runtime_error("TaskGraph: cancelled by a failed task");
    }
    if (satisfied_locked(me)) return;
    if (!ready_.empty()) {
      // Worker loan: run another ready node instead of blocking the
      // thread (this is what makes nested submission deadlock-free).
      // Prefer a node we are actually waiting on — it unblocks this task
      // soonest and keeps the loan stack shallow (a waiter that loans
      // itself to unrelated long chains would nest one frame per loan).
      NodeId pick = *ready_.begin();
      for (std::size_t i = 0; i < me.count; ++i) {
        const NodeId id = me.ids[i];
        if (id < nodes_.size() && nodes_[id].state == NodeState::kReady) {
          pick = id;
          break;
        }
      }
      ++loaning_;  // this frame becomes an ancestor of the loaned one
      execute(pick, lock);
      --loaning_;
      continue;
    }
    waiters_.push_back(&me);
    ++stalled_;
    cv_.wait(lock, [&] {
      return satisfied_locked(me) || error_ || bail_ || !ready_.empty() ||
             deadlocked_locked();
    });
    const bool dead = deadlocked_locked();
    --stalled_;
    waiters_.erase(std::find(waiters_.begin(), waiters_.end(), &me));
    if (dead) {
      // Every in-flight task (including this one) is blocked on nodes
      // that can never run.
      throw std::logic_error("TaskGraph: wait() can never be satisfied");
    }
  }
}

void TaskGraph::wait(std::initializer_list<NodeId> ids) {
  wait(std::span<const NodeId>(ids.begin(), ids.size()));
}

}  // namespace bgpolicy::util
