#include "util/parallel.h"

#include <algorithm>

namespace bgpolicy::util {

std::size_t resolve_threads(std::size_t requested) {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

std::vector<IndexRange> split_ranges(std::size_t n, std::size_t parts) {
  std::vector<IndexRange> ranges;
  if (n == 0) return ranges;
  parts = std::max<std::size_t>(1, std::min(parts, n));
  ranges.reserve(parts);
  const std::size_t base = n / parts;
  const std::size_t remainder = n % parts;
  std::size_t begin = 0;
  for (std::size_t r = 0; r < parts; ++r) {
    const std::size_t size = base + (r < remainder ? 1 : 0);
    ranges.push_back({begin, begin + size});
    begin += size;
  }
  return ranges;
}

/// State for one parallel_for call, shared by every participating thread.
struct ThreadPool::Batch {
  const std::function<void(std::size_t)>* fn = nullptr;
  std::size_t n = 0;
  std::size_t grain = 1;
  std::atomic<std::size_t> cursor{0};
  /// Workers still inside run_chunks; the caller waits for 0.
  std::size_t active = 0;
  std::exception_ptr error;  // first failure wins, guarded by pool mutex_
};

ThreadPool::ThreadPool(std::size_t threads) {
  const std::size_t workers = threads > 1 ? threads - 1 : 0;
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::run_chunks(Batch& batch) {
  while (true) {
    const std::size_t begin = batch.cursor.fetch_add(batch.grain);
    if (begin >= batch.n) return;
    const std::size_t end = std::min(begin + batch.grain, batch.n);
    for (std::size_t i = begin; i < end; ++i) (*batch.fn)(i);
  }
}

void ThreadPool::worker_loop() {
  std::uint64_t seen_epoch = 0;
  while (true) {
    Batch* batch = nullptr;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_ready_.wait(lock, [&] {
        return stop_ || (batch_ != nullptr && batch_epoch_ != seen_epoch);
      });
      if (stop_) return;
      seen_epoch = batch_epoch_;
      batch = batch_;
      ++batch->active;
    }
    std::exception_ptr error;
    try {
      run_chunks(*batch);
    } catch (...) {
      error = std::current_exception();
    }
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (error && !batch->error) {
        batch->error = error;
        batch->cursor.store(batch->n);  // drain: skip remaining indices
      }
      --batch->active;
    }
    batch_done_.notify_all();
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn,
                              std::size_t grain) {
  if (n == 0) return;
  Batch batch;
  batch.fn = &fn;
  batch.n = n;
  batch.grain = std::max<std::size_t>(1, grain);

  if (!workers_.empty()) {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      batch_ = &batch;
      ++batch_epoch_;
    }
    work_ready_.notify_all();
  }

  // The calling thread always participates; with zero workers this is a
  // plain in-order loop.
  std::exception_ptr error;
  try {
    run_chunks(batch);
  } catch (...) {
    error = std::current_exception();
  }

  std::unique_lock<std::mutex> lock(mutex_);
  if (error && !batch.error) {
    batch.error = error;
    batch.cursor.store(batch.n);
  }
  if (!workers_.empty()) {
    batch_ = nullptr;  // workers that have not joined yet will see no work
    batch_done_.wait(lock, [&batch] { return batch.active == 0; });
  }
  if (batch.error) std::rethrow_exception(batch.error);
}

void parallel_for(std::size_t threads, std::size_t n,
                  const std::function<void(std::size_t)>& fn,
                  std::size_t grain) {
  threads = std::min(resolve_threads(threads), n);  // 0 = hw; no idle workers
  if (threads <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  ThreadPool pool(threads);
  pool.parallel_for(n, fn, grain);
}

void parallel_for(const Executor& executor, std::size_t n,
                  const std::function<void(std::size_t)>& fn,
                  std::size_t grain) {
  ThreadPool* pool = executor.pool();
  if (pool == nullptr || n <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  pool->parallel_for(n, fn, grain);
}

}  // namespace bgpolicy::util
