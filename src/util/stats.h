// Small statistics helpers used when rendering the paper's tables/figures.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace bgpolicy::util {

/// Summary statistics over a sample of doubles.
struct Summary {
  std::size_t count = 0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double median = 0.0;
  double p90 = 0.0;
};

[[nodiscard]] Summary summarize(std::span<const double> values);

/// Percentage helper: 100 * part / whole, 0 when whole == 0.
[[nodiscard]] double percent(std::size_t part, std::size_t whole);

/// Integer-keyed histogram (e.g. "uptime in days" -> "number of prefixes",
/// Fig. 7 of the paper).  Keys are kept sorted for rendering.
class Histogram {
 public:
  void add(std::int64_t key, std::uint64_t weight = 1);
  [[nodiscard]] std::uint64_t at(std::int64_t key) const;
  [[nodiscard]] std::uint64_t total() const { return total_; }
  [[nodiscard]] const std::map<std::int64_t, std::uint64_t>& bins() const {
    return bins_;
  }

 private:
  std::map<std::int64_t, std::uint64_t> bins_;
  std::uint64_t total_ = 0;
};

/// A labelled rank series: values sorted in non-increasing order, as in the
/// paper's Fig. 9 ("number of prefixes announced by next-hop ASes").
struct RankSeries {
  std::string label;
  std::vector<std::uint64_t> values;  // sorted non-increasing

  /// Builds a rank series by sorting a copy of `raw` in non-increasing order.
  [[nodiscard]] static RankSeries from(std::string label,
                                       std::vector<std::uint64_t> raw);
};

/// Renders a log-log-style textual sparkline of a rank series; fits the
/// terminal output the benches print for figures.
[[nodiscard]] std::string render_rank_series(const RankSeries& series,
                                             std::size_t max_rows = 12);

}  // namespace bgpolicy::util
