#include "util/rng.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

namespace bgpolicy::util {

std::vector<std::size_t> Rng::sample_indices(std::size_t n, std::size_t k) {
  if (k > n) throw std::invalid_argument("Rng::sample_indices: k > n");
  std::vector<std::size_t> out;
  out.reserve(k);
  if (k == 0) return out;
  if (k * 3 >= n) {
    // Dense case: shuffle a full index vector and truncate.
    std::vector<std::size_t> all(n);
    for (std::size_t i = 0; i < n; ++i) all[i] = i;
    shuffle(all);
    all.resize(k);
    return all;
  }
  // Sparse case: rejection sampling.
  std::unordered_set<std::size_t> seen;
  seen.reserve(k * 2);
  while (out.size() < k) {
    const std::size_t candidate = index(n);
    if (seen.insert(candidate).second) out.push_back(candidate);
  }
  return out;
}

}  // namespace bgpolicy::util
