// Strong identifier types shared across the library.
//
// An AS number and a router index are both "just integers", but mixing them
// up is a real bug class in routing code, so each gets a distinct wrapper
// type (C++ Core Guidelines I.4: make interfaces precisely and strongly
// typed).  The wrappers are trivially copyable, totally ordered, hashable,
// and cost nothing at runtime.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>

namespace bgpolicy::util {

/// A BGP Autonomous System number (16-bit era numbers suffice for this
/// reproduction; the representation is 32-bit so 4-byte ASNs also work).
class AsNumber {
 public:
  constexpr AsNumber() = default;
  constexpr explicit AsNumber(std::uint32_t value) : value_(value) {}

  [[nodiscard]] constexpr std::uint32_t value() const { return value_; }
  friend constexpr auto operator<=>(AsNumber, AsNumber) = default;

 private:
  std::uint32_t value_ = 0;
};

/// A border router index within a vantage AS (used by the per-router
/// local-preference consistency study, Fig. 2b).
class RouterId {
 public:
  constexpr RouterId() = default;
  constexpr explicit RouterId(std::uint32_t value) : value_(value) {}

  [[nodiscard]] constexpr std::uint32_t value() const { return value_; }
  friend constexpr auto operator<=>(RouterId, RouterId) = default;

 private:
  std::uint32_t value_ = 0;
};

[[nodiscard]] std::string to_string(AsNumber as);
[[nodiscard]] std::string to_string(RouterId router);

std::ostream& operator<<(std::ostream& os, AsNumber as);
std::ostream& operator<<(std::ostream& os, RouterId router);

}  // namespace bgpolicy::util

template <>
struct std::hash<bgpolicy::util::AsNumber> {
  std::size_t operator()(bgpolicy::util::AsNumber as) const noexcept {
    return std::hash<std::uint32_t>{}(as.value());
  }
};

template <>
struct std::hash<bgpolicy::util::RouterId> {
  std::size_t operator()(bgpolicy::util::RouterId router) const noexcept {
    return std::hash<std::uint32_t>{}(router.value());
  }
};
