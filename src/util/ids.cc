#include "util/ids.h"

#include <ostream>

namespace bgpolicy::util {

std::string to_string(AsNumber as) { return "AS" + std::to_string(as.value()); }

std::string to_string(RouterId router) {
  return "r" + std::to_string(router.value());
}

std::ostream& operator<<(std::ostream& os, AsNumber as) {
  return os << to_string(as);
}

std::ostream& operator<<(std::ostream& os, RouterId router) {
  return os << to_string(router);
}

}  // namespace bgpolicy::util
