// A monotonic bump arena for per-propagation scratch allocations.
//
// The flat propagation engine (sim/flat_engine.h) allocates many tiny,
// identically-lived objects per prefix fixpoint — community-set copies,
// path scratch — and frees them all at once when the prefix converges.
// A monotonic arena turns each of those allocations into a pointer bump:
// `reset()` rewinds the cursor but keeps every block, so after the first
// prefix warms the arena a whole fixpoint runs without touching the global
// allocator.  `peak_bytes()` reports the high-water mark (the bench
// `peak_arena_bytes` row).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <vector>

namespace bgpolicy::util {

class MonotonicArena {
 public:
  explicit MonotonicArena(std::size_t block_bytes = 64 * 1024)
      : block_bytes_(block_bytes) {}

  MonotonicArena(const MonotonicArena&) = delete;
  MonotonicArena& operator=(const MonotonicArena&) = delete;

  /// Uninitialized storage for `count` objects of trivially-destructible T.
  /// The arena never runs destructors — reset() simply forgets everything.
  template <typename T>
  [[nodiscard]] T* allocate(std::size_t count) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena storage is reclaimed without destructor calls");
    return static_cast<T*>(allocate_bytes(count * sizeof(T), alignof(T)));
  }

  /// Rewinds to empty, retaining every block for reuse.
  void reset() {
    used_ = 0;
    block_ = 0;
    cursor_ = blocks_.empty() ? nullptr : blocks_.front().data.get();
    remaining_ = blocks_.empty() ? 0 : blocks_.front().size;
  }

  /// Bytes handed out since the last reset.
  [[nodiscard]] std::size_t bytes_used() const { return used_; }
  /// Total bytes reserved across all blocks (live across resets).
  [[nodiscard]] std::size_t bytes_reserved() const { return reserved_; }
  /// High-water mark of bytes_used() across the arena's lifetime.
  [[nodiscard]] std::size_t peak_bytes() const { return peak_; }

 private:
  struct Block {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
  };

  [[nodiscard]] void* allocate_bytes(std::size_t bytes, std::size_t align) {
    const std::size_t pad =
        (align - reinterpret_cast<std::uintptr_t>(cursor_) % align) % align;
    if (cursor_ == nullptr || pad + bytes > remaining_) {
      grow(bytes + align);
      return allocate_bytes(bytes, align);
    }
    cursor_ += pad;
    void* out = cursor_;
    cursor_ += bytes;
    remaining_ -= pad + bytes;
    used_ += pad + bytes;
    if (used_ > peak_) peak_ = used_;
    return out;
  }

  void grow(std::size_t min_bytes) {
    // Advance to the next retained block when it fits; otherwise append a
    // fresh one (doubling under pressure keeps block count logarithmic).
    while (block_ + 1 < blocks_.size()) {
      ++block_;
      if (blocks_[block_].size >= min_bytes) {
        cursor_ = blocks_[block_].data.get();
        remaining_ = blocks_[block_].size;
        return;
      }
    }
    std::size_t size = blocks_.empty() ? block_bytes_ : blocks_.back().size * 2;
    if (size < min_bytes) size = min_bytes;
    blocks_.push_back({std::make_unique<std::byte[]>(size), size});
    reserved_ += size;
    block_ = blocks_.size() - 1;
    cursor_ = blocks_.back().data.get();
    remaining_ = size;
  }

  std::size_t block_bytes_;
  std::vector<Block> blocks_;
  std::size_t block_ = 0;       // index of the block cursor_ points into
  std::byte* cursor_ = nullptr;
  std::size_t remaining_ = 0;
  std::size_t used_ = 0;
  std::size_t reserved_ = 0;
  std::size_t peak_ = 0;
};

}  // namespace bgpolicy::util
