// Minimal parallel executor for embarrassingly parallel index loops.
//
// The simulation stack's unit of work is one prefix (one origination): every
// fixpoint is independent, so the only primitive needed is a parallel
// index-for with deterministic completion.  `ThreadPool` keeps a fixed set
// of workers alive across many `parallel_for` calls (run_simulation issues
// one call per batch); work is handed out in chunks through an atomic
// cursor, so scheduling is dynamic but which-index-runs-where never affects
// results — callers write into index-addressed slots and merge in index
// order.
//
// Thread-count semantics (shared by every `threads` knob in the codebase):
//   threads == 0  ->  hardware concurrency (resolve_threads)
//   threads == 1  ->  no workers are spawned; the caller runs every index
//                     in order on its own thread — exact seed behavior
//   threads >= 2  ->  threads-1 workers plus the calling thread
#pragma once

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <initializer_list>
#include <memory>
#include <mutex>
#include <set>
#include <span>
#include <thread>
#include <vector>

namespace bgpolicy::util {

/// Maps a user-facing thread-count knob to an executor size: 0 means "all
/// hardware threads" (at least 1), anything else is taken literally.
[[nodiscard]] std::size_t resolve_threads(std::size_t requested);

/// A contiguous [begin, end) slice of an index space.
struct IndexRange {
  std::size_t begin = 0;
  std::size_t end = 0;
  [[nodiscard]] std::size_t size() const { return end - begin; }
};

/// Splits [0, n) into at most `parts` contiguous, non-empty, near-equal
/// ranges (the remainder is spread one index each across the leading
/// ranges).  The decomposition depends only on (n, parts) — never on
/// scheduling — so shard-and-merge callers that reduce per-range results in
/// range order stay deterministic at any thread count.  Used by the
/// inference stages (Gao voting, path indexing) to shard loops whose
/// per-index work is too small to schedule individually.
[[nodiscard]] std::vector<IndexRange> split_ranges(std::size_t n,
                                                   std::size_t parts);

/// Fixed pool of `threads - 1` workers; the thread calling parallel_for is
/// always the final executor, so `threads` is the total concurrency.
class ThreadPool {
 public:
  /// `threads` is used as given (call resolve_threads first for the 0 knob).
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total concurrency (workers + the calling thread).
  [[nodiscard]] std::size_t size() const { return workers_.size() + 1; }

  /// Runs fn(i) for every i in [0, n) and blocks until all complete.  Work
  /// is claimed in chunks of `grain` indices through an atomic cursor.  If
  /// any invocation throws, the first exception is rethrown here after the
  /// loop drains (remaining indices may be skipped).  Not reentrant: one
  /// parallel_for at a time per pool.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                    std::size_t grain = 1);

 private:
  struct Batch;

  void worker_loop();
  static void run_chunks(Batch& batch);

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable work_ready_;
  std::condition_variable batch_done_;
  Batch* batch_ = nullptr;        // guarded by mutex_
  std::uint64_t batch_epoch_ = 0; // guarded by mutex_; bumped per batch so a
                                  // worker joins each batch at most once
                                  // (no busy re-grab at the batch tail)
  bool stop_ = false;             // guarded by mutex_
};

/// One-shot convenience: `threads <= 1` runs the loop inline (no pool, no
/// atomics — byte-for-byte the sequential program); otherwise spins up a
/// temporary pool.  Prefer a long-lived ThreadPool when calling repeatedly.
void parallel_for(std::size_t threads, std::size_t n,
                  const std::function<void(std::size_t)>& fn,
                  std::size_t grain = 1);

/// A long-lived execution context for the shared `threads` knob: resolves
/// the knob once (0 = hardware concurrency) and — when that leaves more
/// than one thread — owns a ThreadPool that stays alive across every stage
/// that shards on it.  This is how one `Experiment` (or one `sweep`)
/// creates its workers exactly once instead of every `shard_and_merge`
/// call site spinning a private pool.
///
/// `threads() == 1` means strictly sequential: `pool()` is nullptr and the
/// Executor overloads below run inline, byte-for-byte the seed program.
/// The underlying ThreadPool is not reentrant, so never hand an Executor
/// to work that itself runs *on* that Executor's pool (sweep therefore
/// forces variant-internal stages to a sequential Executor).
class Executor {
 public:
  /// Sequential executor: no workers, every loop runs inline.
  Executor() = default;
  /// Resolves the shared knob (0 = hardware concurrency) and spawns the
  /// worker pool once when the result exceeds 1.
  explicit Executor(std::size_t threads) : threads_(resolve_threads(threads)) {
    if (threads_ > 1) pool_ = std::make_unique<ThreadPool>(threads_);
  }

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  /// Total concurrency this executor provides (>= 1).
  [[nodiscard]] std::size_t threads() const { return threads_; }
  /// The shared pool, or nullptr when sequential.
  [[nodiscard]] ThreadPool* pool() const { return pool_.get(); }

 private:
  std::size_t threads_ = 1;
  std::unique_ptr<ThreadPool> pool_;
};

/// Runs fn(i) for i in [0, n) on the executor's shared pool (inline when
/// the executor is sequential or the loop is trivially small).
void parallel_for(const Executor& executor, std::size_t n,
                  const std::function<void(std::size_t)>& fn,
                  std::size_t grain = 1);

/// Batched shard-and-merge, the canonical deterministic-parallel pattern of
/// the simulation stack: computes `compute(index)` into index-addressed
/// slots (on `pool` when given and the batch has work for more than one
/// thread, inline otherwise), then calls `merge(index, slot)` sequentially
/// in index order.  Merge order never depends on thread count or
/// scheduling, so output built by `merge` is byte-identical to the
/// sequential program; batching bounds peak memory to one batch of results.
/// `pool` may be nullptr for fully sequential execution.
template <typename Compute, typename Merge>
void shard_and_merge(ThreadPool* pool, std::size_t n, Compute&& compute,
                     Merge&& merge) {
  if (n == 0) return;
  const std::size_t threads = pool == nullptr ? 1 : pool->size();
  // Sequential execution merges each result immediately (one live slot,
  // exactly the pre-sharding loop); parallel batches trade bounded memory
  // for worker utilization.
  const std::size_t batch_size =
      pool == nullptr
          ? std::size_t{1}
          : (threads * 8 > std::size_t{32} ? threads * 8 : std::size_t{32});
  using Result = decltype(compute(std::size_t{0}));
  std::vector<Result> slots(batch_size < n ? batch_size : n);
  for (std::size_t base = 0; base < n; base += batch_size) {
    const std::size_t count =
        batch_size < n - base ? batch_size : n - base;
    const auto fill = [&](std::size_t i) { slots[i] = compute(base + i); };
    if (pool != nullptr && count > 1) {
      pool->parallel_for(count, fill);
    } else {
      for (std::size_t i = 0; i < count; ++i) fill(i);
    }
    for (std::size_t i = 0; i < count; ++i) merge(base + i, slots[i]);
  }
}

/// Convenience overload owning a one-shot pool: resolves the `threads` knob
/// (0 = hardware concurrency), clamps it to the work available, and runs
/// inline when that leaves a single thread.  Callers that shard repeatedly
/// should keep a long-lived Executor and use the Executor overload.
template <typename Compute, typename Merge>
void shard_and_merge(std::size_t threads, std::size_t n, Compute&& compute,
                     Merge&& merge) {
  threads = resolve_threads(threads);
  if (threads > n) threads = n;
  if (threads > 1) {
    ThreadPool pool(threads);
    shard_and_merge(&pool, n, compute, merge);
  } else {
    shard_and_merge(static_cast<ThreadPool*>(nullptr), n, compute, merge);
  }
}

/// Shard-and-merge on a long-lived Executor: uses the executor's shared
/// pool (sequential inline when the executor is sequential or the batch is
/// single-item — see the pointer overload).  Identical determinism
/// contract; only pool ownership differs.
template <typename Compute, typename Merge>
void shard_and_merge(const Executor& executor, std::size_t n,
                     Compute&& compute, Merge&& merge) {
  shard_and_merge(n > 1 ? executor.pool() : nullptr, n, compute, merge);
}

// -------------------------------------------------------------- task graph --

/// A small deterministic-task dependency graph scheduled on an Executor —
/// the future/continuation layer the staged experiment pipeline runs on
/// (core::Experiment recasts its stages as nodes; core::sweep submits every
/// variant's nodes into one graph so cross-variant work interleaves).
///
/// Nodes are `void()` tasks; edges say "this node runs only after those".
/// Tasks must be deterministic pure-ish functions writing results into
/// their own slots: edges establish happens-before (all state transitions
/// go through one mutex), so a dependent reads its inputs race-free, and
/// which thread ran which node can never influence any output.
///
/// Execution model:
///   * `run(executor)` drives the graph to completion on the executor's
///     pool (the calling thread participates).  A sequential executor runs
///     every node inline on the calling thread in deterministic order —
///     ready nodes execute lowest-id first, so `threads == 1` is the exact
///     program order of the `add` calls (topologically).
///   * **Worker-loan nested submission:** a running task may `submit` new
///     nodes and `wait` on them.  The waiting worker loans itself back to
///     the scheduler and executes other ready nodes instead of blocking,
///     so nested fan-out (e.g. Simulate's per-prefix-shard chunk tasks)
///     can never deadlock the pool, even at `threads == 1`.
///   * **Failure propagation:** the first exception wins; every node not
///     yet started is skipped (its fn never runs), `wait` calls inside
///     running tasks throw, and `run` rethrows the first exception after
///     the graph drains.  A cycle (or a `wait` that can never be
///     satisfied) is detected — when no node is ready and every in-flight
///     task is itself blocked waiting — and reported as std::logic_error.
///
/// A TaskGraph instance is single-run: build with `add`, call `run` once.
/// `add` is not thread-safe; `submit`/`wait` may only be called from
/// inside a running task (they are thread-safe).
class TaskGraph {
 public:
  using NodeId = std::size_t;

  TaskGraph() = default;
  TaskGraph(const TaskGraph&) = delete;
  TaskGraph& operator=(const TaskGraph&) = delete;

  /// Adds a node that runs after every node in `deps` (ids from earlier
  /// add/submit calls).  Build-time only (before run).
  NodeId add(std::function<void()> fn, std::span<const NodeId> deps = {});
  NodeId add(std::function<void()> fn, std::initializer_list<NodeId> deps);

  /// Runs every node and blocks until the graph drains.  Rethrows the
  /// first task exception.  Uses the executor's shared pool; a sequential
  /// executor runs everything inline in deterministic lowest-id order.
  void run(const Executor& executor);

  /// Thread-safe add for use from *inside* a running task (nested
  /// submission).  Dependencies may include already-finished nodes.
  NodeId submit(std::function<void()> fn, std::span<const NodeId> deps = {});
  NodeId submit(std::function<void()> fn, std::initializer_list<NodeId> deps);

  /// Blocks the calling *task* until every node in `ids` finished, loaning
  /// the worker to other ready nodes meanwhile (see class comment).
  /// Throws std::runtime_error when the graph was cancelled by another
  /// task's failure and std::logic_error on a wait that can never be
  /// satisfied.  Only valid from inside a running task.
  void wait(std::span<const NodeId> ids);
  void wait(std::initializer_list<NodeId> ids);

  /// Number of nodes added so far (diagnostics/tests).
  [[nodiscard]] std::size_t size() const { return nodes_.size(); }

 private:
  enum class NodeState : std::uint8_t { kWaiting, kReady, kRunning, kDone };

  struct Node {
    std::function<void()> fn;
    NodeState state = NodeState::kWaiting;
    std::size_t pending = 0;  // unfinished dependencies
    std::vector<NodeId> dependents;
  };

  /// A task blocked inside wait(), registered so the deadlock check can
  /// tell "stalled but about to be woken" from "can never progress".
  struct Waiter {
    const NodeId* ids;
    std::size_t count;
  };

  NodeId add_locked(std::function<void()>&& fn, std::span<const NodeId> deps);
  /// Pops and executes `id` (must be ready); called with `lock` held,
  /// releases it around the task body, reacquires to finish.
  void execute(NodeId id, std::unique_lock<std::mutex>& lock);
  /// One scheduler instance: executes ready nodes until the graph drains.
  void scheduler_loop();
  [[nodiscard]] bool finished_locked() const {
    return done_ == nodes_.size();
  }
  [[nodiscard]] bool satisfied_locked(const Waiter& waiter) const;
  /// True when the graph can never progress again: nothing ready, every
  /// in-flight task blocked in wait(), and no blocked waiter's targets are
  /// all done (a satisfied waiter is merely pending its wakeup).
  [[nodiscard]] bool deadlocked_locked() const;

  std::mutex mutex_;
  std::condition_variable cv_;
  std::vector<Node> nodes_;   // guarded by mutex_ once run() starts
  std::set<NodeId> ready_;    // lowest id first: the deterministic pop order
  std::vector<const Waiter*> waiters_;  // guarded by mutex_
  std::size_t done_ = 0;      // nodes finished (run or skipped)
  std::size_t executing_ = 0; // task frames on a thread (incl. waiters)
  std::size_t stalled_ = 0;   // tasks blocked inside wait()
  std::size_t loaning_ = 0;   // wait() frames currently running a loaned
                              // node: ancestors of another counted frame,
                              // not independently progressing
  bool bail_ = false;         // cycle detected: schedulers must exit
  std::exception_ptr error_;  // first failure wins
};

/// The canonical "optional shared executor" resolution used by every stage
/// entry point that still exposes a bare `threads` knob: when the caller
/// supplied a long-lived executor it wins, otherwise `make_owned` is filled
/// with a one-shot executor sized from `threads` (clamped to the `work`
/// item count so tiny runs never spawn idle workers) and returned.  Keeps
/// the compatibility knob and the shared-pool path on one code route.
inline const Executor& executor_or(const Executor* executor,
                                   std::size_t threads, std::size_t work,
                                   std::unique_ptr<Executor>& make_owned) {
  if (executor != nullptr) return *executor;
  const std::size_t resolved = std::min(resolve_threads(threads), work);
  make_owned = std::make_unique<Executor>(resolved > 1 ? resolved : 1);
  return *make_owned;
}

}  // namespace bgpolicy::util
