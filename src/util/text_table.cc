#include "util/text_table.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace bgpolicy::util {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  if (header_.empty()) {
    throw std::invalid_argument("TextTable: header must be non-empty");
  }
}

void TextTable::add_row(std::vector<std::string> cells) {
  if (cells.size() != header_.size()) {
    throw std::invalid_argument("TextTable: row width mismatch");
  }
  rows_.push_back(std::move(cells));
}

std::string TextTable::render(const std::string& title) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream out;
  if (!title.empty()) out << title << "\n";
  const auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << "| " << row[c] << std::string(widths[c] - row[c].size(), ' ')
          << ' ';
    }
    out << "|\n";
  };
  const auto emit_rule = [&] {
    for (const std::size_t w : widths) out << '+' << std::string(w + 2, '-');
    out << "+\n";
  };
  emit_rule();
  emit_row(header_);
  emit_rule();
  for (const auto& row : rows_) emit_row(row);
  emit_rule();
  return out.str();
}

std::string fmt(double value, int digits) {
  std::ostringstream out;
  out.setf(std::ios::fixed);
  out.precision(digits);
  out << value;
  return out.str();
}

std::string fmt_count_pct(std::size_t count, double pct) {
  std::ostringstream out;
  out << count << " (" << fmt(pct, 0) << "%)";
  return out.str();
}

}  // namespace bgpolicy::util
