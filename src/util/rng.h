// Deterministic random number generation.
//
// Every stochastic component of the reproduction (topology generation,
// policy assignment, churn) draws from this generator so that a single seed
// reproduces an entire experiment bit-for-bit.  The engine is xoshiro256++
// (public domain, Blackman & Vigna) seeded via splitmix64; both are small
// enough to own outright, which keeps results stable across standard-library
// implementations (std::mt19937 streams are stable, but distribution
// implementations are not).
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <limits>
#include <span>
#include <stdexcept>
#include <vector>

namespace bgpolicy::util {

/// splitmix64 step; used for seeding and as a cheap stateless mixer.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// xoshiro256++ engine with convenience distributions.
///
/// Satisfies UniformRandomBitGenerator, so it can also feed <random>
/// distributions if ever needed, but the built-in helpers below are the
/// supported (and reproducible) interface.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() { return next(); }

  /// Forks an independent, deterministic child stream.  Use one child per
  /// subsystem so that adding draws in one subsystem does not perturb
  /// another ("stream splitting").
  [[nodiscard]] Rng fork() {
    // Mix two outputs so forked streams do not overlap trivially.
    std::uint64_t s = next() ^ 0xA5A5A5A55A5A5A5AULL;
    s ^= next() << 1;
    return Rng(s);
  }

  /// Uniform integer in [lo, hi] inclusive.  Precondition: lo <= hi.
  [[nodiscard]] std::uint64_t uniform(std::uint64_t lo, std::uint64_t hi) {
    if (lo > hi) throw std::invalid_argument("Rng::uniform: lo > hi");
    const std::uint64_t span = hi - lo;
    if (span == max()) return next();
    // Rejection sampling (Lemire-style bounded draw without bias).
    const std::uint64_t bound = span + 1;
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      const std::uint64_t r = next();
      if (r >= threshold) return lo + r % bound;
    }
  }

  /// Uniform size_t index in [0, n).  Precondition: n > 0.
  [[nodiscard]] std::size_t index(std::size_t n) {
    if (n == 0) throw std::invalid_argument("Rng::index: empty range");
    return static_cast<std::size_t>(uniform(0, n - 1));
  }

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform01() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  [[nodiscard]] bool chance(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return uniform01() < p;
  }

  /// Discrete Pareto-ish heavy-tailed draw in [1, cap]: used for AS degree
  /// and prefix-count distributions, which are power-law-like in the
  /// Internet (Faloutsos et al., cited by the paper as [4]).
  [[nodiscard]] std::uint64_t pareto(double alpha, std::uint64_t cap) {
    if (alpha <= 0.0) throw std::invalid_argument("Rng::pareto: alpha <= 0");
    if (cap == 0) throw std::invalid_argument("Rng::pareto: cap == 0");
    // Inverse-CDF of a continuous Pareto with x_min = 1, truncated at cap.
    double u = uniform01();
    double x = 1.0 / std::pow(1.0 - u, 1.0 / alpha);
    if (x > static_cast<double>(cap)) x = static_cast<double>(cap);
    return static_cast<std::uint64_t>(x);
  }

  /// Picks a uniformly random element of a non-empty span.
  template <typename T>
  [[nodiscard]] const T& pick(std::span<const T> items) {
    return items[index(items.size())];
  }

  template <typename T>
  [[nodiscard]] const T& pick(const std::vector<T>& items) {
    return items[index(items.size())];
  }

  /// Fisher–Yates shuffle (std::shuffle's element order is unspecified
  /// across implementations; this one is pinned).
  template <typename T>
  void shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      using std::swap;
      swap(items[i - 1], items[index(i)]);
    }
  }

  /// Samples k distinct indices from [0, n) in selection order.
  [[nodiscard]] std::vector<std::size_t> sample_indices(std::size_t n,
                                                        std::size_t k);

 private:
  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace bgpolicy::util
