#include "serve/service.h"

#include <stdexcept>
#include <thread>
#include <utility>

#include "serve/wire.h"

namespace bgpolicy::serve {

namespace {

Frame error_frame(const Frame& request, std::string_view message) {
  wire::Writer out;
  out.put(static_cast<std::uint8_t>(QueryStatus::kError));
  out.put_string(message);
  Frame response;
  response.kind = static_cast<std::uint16_t>(request.kind | kResponseBit);
  response.request_id = request.request_id;
  response.payload = out.take();
  return response;
}

}  // namespace

QueryService::QueryService(SnapshotRegistry& registry, ServiceConfig config)
    : registry_(&registry), config_(config) {
  if (config_.threads == 0) {
    config_.threads = std::thread::hardware_concurrency();
    if (config_.threads == 0) config_.threads = 1;
  }
}

QueryService::~QueryService() { stop(); }

void QueryService::start() {
  if (running()) throw std::runtime_error("QueryService already started");
  listen_.emplace(config_.port);
  loops_.clear();
  loops_.reserve(config_.threads);
  for (std::size_t i = 0; i < config_.threads; ++i) {
    loops_.push_back(std::make_unique<EventLoop>(
        listen_->fd(), [this](const Frame& request) { return handle(request); },
        config_.loop));
  }
  threads_.reserve(loops_.size());
  for (auto& loop : loops_) {
    threads_.emplace_back([raw = loop.get()] { raw->run(); });
  }
}

void QueryService::stop() {
  for (auto& loop : loops_) loop->stop();
  for (auto& thread : threads_) {
    if (thread.joinable()) thread.join();
  }
  if (!loops_.empty()) final_stats_ = stats();
  threads_.clear();
  loops_.clear();
  listen_.reset();
}

std::uint16_t QueryService::port() const {
  if (!listen_) throw std::runtime_error("QueryService not started");
  return listen_->port();
}

EventLoopStats QueryService::stats() const {
  if (loops_.empty()) return final_stats_;
  EventLoopStats total;
  for (const auto& loop : loops_) {
    const EventLoopStats s = loop->stats();
    total.accepted += s.accepted;
    total.closed += s.closed;
    total.frames_in += s.frames_in;
    total.frames_out += s.frames_out;
    total.malformed_closes += s.malformed_closes;
    total.read_pauses += s.read_pauses;
    total.accept_pauses += s.accept_pauses;
  }
  return total;
}

Frame QueryService::handle(const Frame& request) const {
  if (!known_kind(request.kind)) {
    return error_frame(request, "unknown query kind");
  }
  // ONE registry load per request: the whole answer reads a single
  // snapshot even if a refresh publishes a newer one mid-evaluation.
  const std::shared_ptr<const Snapshot> snapshot = registry_->current();
  if (!snapshot) {
    return error_frame(request, "no snapshot published yet");
  }
  Frame response;
  response.kind = static_cast<std::uint16_t>(request.kind | kResponseBit);
  response.request_id = request.request_id;
  response.payload = answer(static_cast<QueryKind>(request.kind),
                            request.payload, *snapshot);
  return response;
}

}  // namespace bgpolicy::serve
