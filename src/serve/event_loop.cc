#include "serve/event_loop.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>
#include <vector>

namespace bgpolicy::serve {

namespace {

[[noreturn]] void throw_errno(const char* what) {
  throw std::runtime_error(std::string(what) + ": " +
                           std::strerror(errno));
}

}  // namespace

// ------------------------------------------------------------ ListenSocket --

ListenSocket::ListenSocket(std::uint16_t port, int backlog) {
  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd_ < 0) throw_errno("socket");
  const int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const int saved = errno;
    ::close(fd_);
    fd_ = -1;
    errno = saved;
    throw_errno("bind");
  }
  if (::listen(fd_, backlog) < 0) {
    const int saved = errno;
    ::close(fd_);
    fd_ = -1;
    errno = saved;
    throw_errno("listen");
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&bound), &len) < 0) {
    const int saved = errno;
    ::close(fd_);
    fd_ = -1;
    errno = saved;
    throw_errno("getsockname");
  }
  port_ = ntohs(bound.sin_port);
}

ListenSocket::~ListenSocket() {
  if (fd_ >= 0) ::close(fd_);
}

ListenSocket::ListenSocket(ListenSocket&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      port_(std::exchange(other.port_, 0)) {}

ListenSocket& ListenSocket::operator=(ListenSocket&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = std::exchange(other.fd_, -1);
    port_ = std::exchange(other.port_, 0);
  }
  return *this;
}

// --------------------------------------------------------------- EventLoop --

struct EventLoop::Connection {
  int fd = -1;
  FrameReader reader;
  std::vector<std::uint8_t> out;
  std::size_t out_pos = 0;
  bool read_paused = false;
  std::uint32_t interest = 0;  ///< epoll events currently registered

  [[nodiscard]] std::size_t pending_out() const {
    return out.size() - out_pos;
  }
};

struct EventLoop::AtomicStats {
  std::atomic<std::uint64_t> accepted{0};
  std::atomic<std::uint64_t> closed{0};
  std::atomic<std::uint64_t> frames_in{0};
  std::atomic<std::uint64_t> frames_out{0};
  std::atomic<std::uint64_t> malformed_closes{0};
  std::atomic<std::uint64_t> read_pauses{0};
  std::atomic<std::uint64_t> accept_pauses{0};
  std::atomic<std::size_t> connections{0};
};

EventLoop::EventLoop(int listen_fd, Handler handler, EventLoopConfig config)
    : listen_fd_(listen_fd),
      handler_(std::move(handler)),
      config_(config),
      stats_(std::make_unique<AtomicStats>()) {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) throw_errno("epoll_create1");
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (wake_fd_ < 0) {
    const int saved = errno;
    ::close(epoll_fd_);
    errno = saved;
    throw_errno("eventfd");
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = wake_fd_;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) < 0) {
    throw_errno("epoll_ctl(wake)");
  }
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd_;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev) < 0) {
    throw_errno("epoll_ctl(listen)");
  }
}

EventLoop::~EventLoop() {
  for (auto& [fd, connection] : connections_) ::close(fd);
  connections_.clear();
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

void EventLoop::stop() {
  const std::uint64_t one = 1;
  // A full eventfd counter still wakes the loop; ignore short writes.
  [[maybe_unused]] const ssize_t n = ::write(wake_fd_, &one, sizeof(one));
}

EventLoopStats EventLoop::stats() const {
  EventLoopStats out;
  out.accepted = stats_->accepted.load(std::memory_order_relaxed);
  out.closed = stats_->closed.load(std::memory_order_relaxed);
  out.frames_in = stats_->frames_in.load(std::memory_order_relaxed);
  out.frames_out = stats_->frames_out.load(std::memory_order_relaxed);
  out.malformed_closes =
      stats_->malformed_closes.load(std::memory_order_relaxed);
  out.read_pauses = stats_->read_pauses.load(std::memory_order_relaxed);
  out.accept_pauses = stats_->accept_pauses.load(std::memory_order_relaxed);
  return out;
}

std::size_t EventLoop::connection_count() const {
  return stats_->connections.load(std::memory_order_relaxed);
}

void EventLoop::set_accept_enabled(bool enabled) {
  if (enabled == accept_enabled_) return;
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd_;
  if (enabled) {
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev);
  } else {
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listen_fd_, nullptr);
    stats_->accept_pauses.fetch_add(1, std::memory_order_relaxed);
  }
  accept_enabled_ = enabled;
}

void EventLoop::handle_accept() {
  while (true) {
    if (connections_.size() >= config_.max_connections) {
      set_accept_enabled(false);
      return;
    }
    const int fd =
        ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      // EAGAIN: drained (or another loop on the shared fd won the race).
      // Transient accept errors (ECONNABORTED, EMFILE...) also just end
      // this round; level-triggered epoll retries on the next wait.
      return;
    }
    auto connection = std::make_unique<Connection>();
    connection->fd = fd;
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) < 0) {
      ::close(fd);
      continue;
    }
    connection->interest = EPOLLIN;
    connections_.emplace(fd, std::move(connection));
    stats_->accepted.fetch_add(1, std::memory_order_relaxed);
    stats_->connections.store(connections_.size(),
                              std::memory_order_relaxed);
  }
}

void EventLoop::update_interest(Connection& connection) {
  std::uint32_t want = 0;
  if (!connection.read_paused) want |= EPOLLIN;
  if (connection.pending_out() > 0) want |= EPOLLOUT;
  if (want == connection.interest) return;
  epoll_event ev{};
  ev.events = want;
  ev.data.fd = connection.fd;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, connection.fd, &ev);
  connection.interest = want;
}

bool EventLoop::flush_writes(Connection& connection) {
  while (connection.out_pos < connection.out.size()) {
    const ssize_t n =
        ::write(connection.fd, connection.out.data() + connection.out_pos,
                connection.out.size() - connection.out_pos);
    if (n > 0) {
      connection.out_pos += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    return false;  // peer is gone
  }
  if (connection.out_pos == connection.out.size()) {
    connection.out.clear();
    connection.out_pos = 0;
  } else if (connection.out_pos > connection.out.size() / 2) {
    // Keep the buffer from accumulating a long flushed prefix.
    connection.out.erase(connection.out.begin(),
                         connection.out.begin() +
                             static_cast<std::ptrdiff_t>(connection.out_pos));
    connection.out_pos = 0;
  }
  // Backpressure: a client that sends requests faster than it drains
  // responses stops being read until its buffer shrinks.
  const bool over = connection.pending_out() > config_.max_write_buffer_bytes;
  if (over && !connection.read_paused) {
    connection.read_paused = true;
    stats_->read_pauses.fetch_add(1, std::memory_order_relaxed);
  } else if (!over && connection.read_paused &&
             connection.pending_out() <= config_.max_write_buffer_bytes / 2) {
    connection.read_paused = false;
  }
  update_interest(connection);
  return true;
}

void EventLoop::handle_readable(Connection& connection) {
  std::vector<std::uint8_t> buffer(config_.read_chunk_bytes);
  bool peer_closed = false;
  while (!connection.read_paused) {
    const ssize_t n = ::read(connection.fd, buffer.data(), buffer.size());
    if (n > 0) {
      connection.reader.feed(
          std::span<const std::uint8_t>(buffer.data(),
                                        static_cast<std::size_t>(n)));
      while (std::optional<Frame> frame = connection.reader.next()) {
        stats_->frames_in.fetch_add(1, std::memory_order_relaxed);
        try {
          const Frame reply = handler_(*frame);
          append_frame(connection.out, reply);
          stats_->frames_out.fetch_add(1, std::memory_order_relaxed);
        } catch (...) {
          close_connection(connection.fd);
          return;
        }
      }
      if (connection.reader.malformed()) {
        stats_->malformed_closes.fetch_add(1, std::memory_order_relaxed);
        // Flush what was already answered, then cut the peer off.
        flush_writes(connection);
        close_connection(connection.fd);
        return;
      }
      // Apply backpressure between reads, not only per epoll round, so a
      // pipelining flood cannot outrun the write cap within one burst.
      if (connection.pending_out() > config_.max_write_buffer_bytes) {
        if (!flush_writes(connection)) {
          close_connection(connection.fd);
          return;
        }
      }
      if (static_cast<std::size_t>(n) < buffer.size()) break;
      continue;
    }
    if (n == 0) {
      peer_closed = true;
      break;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    peer_closed = true;  // hard error
    break;
  }
  if (!flush_writes(connection)) {
    close_connection(connection.fd);
    return;
  }
  if (peer_closed) {
    // Orderly shutdown: the peer is done sending.  Anything still
    // unflushed has no reader coming back for it.
    close_connection(connection.fd);
  }
}

void EventLoop::close_connection(int fd) {
  const auto it = connections_.find(fd);
  if (it == connections_.end()) return;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  ::close(fd);
  connections_.erase(it);
  stats_->closed.fetch_add(1, std::memory_order_relaxed);
  stats_->connections.store(connections_.size(), std::memory_order_relaxed);
  if (!accept_enabled_ && connections_.size() < config_.max_connections) {
    set_accept_enabled(true);
  }
}

void EventLoop::run() {
  std::vector<epoll_event> events(128);
  while (!stopping_) {
    const int n = ::epoll_wait(epoll_fd_, events.data(),
                               static_cast<int>(events.size()), -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("epoll_wait");
    }
    for (int i = 0; i < n && !stopping_; ++i) {
      const int fd = events[i].data.fd;
      const std::uint32_t mask = events[i].events;
      if (fd == wake_fd_) {
        std::uint64_t drain = 0;
        [[maybe_unused]] const ssize_t r =
            ::read(wake_fd_, &drain, sizeof(drain));
        stopping_ = true;
        break;
      }
      if (fd == listen_fd_) {
        handle_accept();
        continue;
      }
      const auto it = connections_.find(fd);
      if (it == connections_.end()) continue;  // closed earlier this round
      Connection& connection = *it->second;
      if (mask & (EPOLLHUP | EPOLLERR)) {
        close_connection(fd);
        continue;
      }
      if (mask & EPOLLOUT) {
        if (!flush_writes(connection)) {
          close_connection(fd);
          continue;
        }
      }
      if (mask & EPOLLIN) handle_readable(connection);
    }
  }
  // Drain: close every connection so clients see EOF promptly.
  std::vector<int> fds;
  fds.reserve(connections_.size());
  for (const auto& [fd, connection] : connections_) fds.push_back(fd);
  for (const int fd : fds) close_connection(fd);
}

}  // namespace bgpolicy::serve
