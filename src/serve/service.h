// QueryService: the assembled serving layer — N event-loop threads over
// one shared listen socket, answering frame requests from the current
// SnapshotRegistry snapshot.
//
// Request handling is snapshot-consistent: the handler loads the registry
// pointer ONCE per request, so every byte of a response comes from a
// single snapshot even while a background refresh publishes a new one
// mid-request.  The `threads` knob only multiplies event loops — answers
// are pure functions of (request, snapshot), so results are byte-identical
// at any value (the serving extension of the repo's determinism contract).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "serve/event_loop.h"
#include "serve/query.h"
#include "serve/snapshot.h"

namespace bgpolicy::serve {

struct ServiceConfig {
  /// TCP port on 127.0.0.1; 0 binds an ephemeral port (read it back from
  /// port() — the hook tests and CI use).
  std::uint16_t port = 0;
  /// Event-loop threads sharing the listen socket (0 = hardware
  /// concurrency).  Each connection lives on the loop that accepted it.
  std::size_t threads = 1;
  EventLoopConfig loop;
};

class QueryService {
 public:
  /// `registry` is borrowed and must outlive the service; publish at least
  /// one snapshot before issuing queries (pre-publish requests get error
  /// responses, not crashes).
  QueryService(SnapshotRegistry& registry, ServiceConfig config = {});
  /// Stops and joins if still running.
  ~QueryService();

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// Binds the listen socket and launches the loop threads.  Throws
  /// std::runtime_error when the port cannot be bound.
  void start();
  /// Signals every loop and joins the threads (idempotent).
  void stop();

  /// The bound port (valid after start()).
  [[nodiscard]] std::uint16_t port() const;
  [[nodiscard]] bool running() const { return !threads_.empty(); }
  /// Counters summed across loops; after stop(), the final totals.
  [[nodiscard]] EventLoopStats stats() const;
  [[nodiscard]] std::size_t loop_count() const { return loops_.size(); }

 private:
  [[nodiscard]] Frame handle(const Frame& request) const;

  SnapshotRegistry* registry_;
  ServiceConfig config_;
  std::optional<ListenSocket> listen_;
  std::vector<std::unique_ptr<EventLoop>> loops_;
  std::vector<std::thread> threads_;
  EventLoopStats final_stats_;
};

}  // namespace bgpolicy::serve
