// The query service's length-prefixed binary wire protocol (serve::Frame).
//
// A connection is a byte stream of frames, each carrying one request or
// one response:
//
//   magic "BGPQ" | u16 protocol version | u16 kind | u64 request id
//   | u32 payload length | u64 FNV-1a checksum | payload...
//
// The checksum covers the header's kind/id/length fields as well as the
// payload, so a bit flip anywhere in a frame fails verification.
//
// (28-byte header, little-endian integers — the same checksum/versioning
// discipline as the artifact codec, io/artifact_codec.h: a decoder rejects
// foreign bytes, future protocol versions, implausible lengths, and bit
// corruption *before* interpreting a single payload byte.)
//
// Decoding is incremental and never throws: `FrameReader` buffers partial
// frames across reads and yields complete frames one at a time; any header
// or checksum defect is kMalformed, which the event loop answers by
// closing the connection — a hostile or confused peer can cost its own
// connection, never the process.  Query kinds and payload encodings live
// in serve/query.h; the full wire format is documented in
// docs/QUERY_SERVICE.md.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace bgpolicy::serve {

inline constexpr std::uint16_t kProtocolVersion = 1;
/// Frame header size in bytes (magic + version + kind + id + length +
/// checksum).
inline constexpr std::size_t kFrameHeaderBytes = 28;
/// Upper bound on one frame's payload.  Requests are tiny; responses carry
/// at most an SA-prefix list or a histogram, far below this.  A length
/// field above the cap is malformed — the reader never buffers toward an
/// implausible length, so a hostile length cannot balloon memory.
inline constexpr std::size_t kMaxPayloadBytes = 8u << 20;

/// One decoded frame: the kind tag (serve::QueryKind for requests; the
/// same value with kResponseBit set for responses), the client-chosen
/// request id echoed back in the response, and the payload bytes.
struct Frame {
  std::uint16_t kind = 0;
  std::uint64_t request_id = 0;
  std::vector<std::uint8_t> payload;

  friend bool operator==(const Frame&, const Frame&) = default;
};

/// Serializes a frame (header + payload).  `append_frame` writes onto an
/// existing buffer — the event loop's per-connection write path.
[[nodiscard]] std::vector<std::uint8_t> encode_frame(const Frame& frame);
void append_frame(std::vector<std::uint8_t>& out, const Frame& frame);

enum class DecodeStatus : std::uint8_t {
  /// The buffer holds a valid prefix of a frame; feed more bytes.
  kNeedMore = 0,
  /// One complete frame was decoded (`frame`, `consumed` bytes).
  kFrame = 1,
  /// The stream is not a valid frame sequence (`error` names the defect);
  /// the connection carrying it must be closed.
  kMalformed = 2,
};

struct DecodeResult {
  DecodeStatus status = DecodeStatus::kNeedMore;
  Frame frame;
  /// Bytes consumed from the front of the input (kFrame only).
  std::size_t consumed = 0;
  std::string error;
};

/// Decodes the first frame of `bytes`.  Pure and non-throwing: truncation
/// is kNeedMore, any defect is kMalformed.
[[nodiscard]] DecodeResult decode_frame(std::span<const std::uint8_t> bytes);

/// Incremental frame extractor for one connection's read stream: feed()
/// appends raw socket bytes, next() yields complete frames until the
/// buffer holds only a partial frame (nullopt) or a defect was seen
/// (malformed() latches — the connection is done).  Buffered partials are
/// bounded by kFrameHeaderBytes + kMaxPayloadBytes.
class FrameReader {
 public:
  void feed(std::span<const std::uint8_t> bytes);

  /// The next complete frame, or nullopt when more bytes are needed or the
  /// stream is malformed (check malformed()).
  [[nodiscard]] std::optional<Frame> next();

  [[nodiscard]] bool malformed() const { return malformed_; }
  [[nodiscard]] const std::string& error() const { return error_; }
  /// Bytes currently buffered (diagnostics/tests).
  [[nodiscard]] std::size_t buffered() const { return buffer_.size() - pos_; }

 private:
  std::vector<std::uint8_t> buffer_;
  std::size_t pos_ = 0;  ///< consumed prefix of buffer_ (compacted lazily)
  bool malformed_ = false;
  std::string error_;
};

}  // namespace bgpolicy::serve
