// The warm substrate `what_if_failure` queries branch from.
//
// A what-if query asks "if these sessions failed, what would this AS's
// route to these prefixes become?"  Answering it cold would pay a full
// per-prefix fixpoint per query.  Instead the snapshot carries one
// `WhatIfBase`: the scenario's ground truth (graph + policies +
// originations), a shared `FlatSimContext`, and a lazily filled write-once
// cache of converged healthy-world `DeltaState`s — one per origination.
// Each query deep-copies the base state of every origination it touches
// (DeltaState::assign_from), applies the hypothetical failures as a dirty
// frontier (sim/delta_engine.h), and reads the branched route, leaving the
// shared base untouched.
//
// Thread safety: base states are computed *outside* the cache lock and
// installed insert-if-absent, so a slow converge never blocks other
// queries; two racing queries may both converge the same origination and
// one result is discarded — harmless, because converge is deterministic
// and the cached value is identical either way.  Responses therefore stay
// a pure function of (request, snapshot), the service's determinism
// contract.
#pragma once

#include <cstddef>
#include <memory>
#include <mutex>
#include <vector>

#include "core/experiment.h"
#include "sim/delta_engine.h"
#include "sim/flat_engine.h"

namespace bgpolicy::serve {

class WhatIfBase {
 public:
  /// `truth` must be non-null; the options' thread knob is irrelevant here
  /// (each query's waves run on the serving thread).
  WhatIfBase(std::shared_ptr<const core::GroundTruth> truth,
             sim::PropagationOptions options);

  [[nodiscard]] const core::GroundTruth& truth() const { return *truth_; }
  [[nodiscard]] const sim::DeltaEngine& engine() const { return engine_; }

  /// The converged healthy-world state of origination #`index` (an index
  /// into truth().originations).  First call converges and caches;
  /// later calls return the cached state.  Thread-safe; the returned
  /// state is shared and must not be mutated — branch with assign_from.
  [[nodiscard]] std::shared_ptr<const sim::DeltaState> base_state(
      std::size_t index) const;

  /// Number of base states converged so far (diagnostics/tests).
  [[nodiscard]] std::size_t converged_count() const;

 private:
  std::shared_ptr<const core::GroundTruth> truth_;
  sim::FlatSimContext context_;
  sim::DeltaEngine engine_;
  mutable std::mutex mutex_;
  /// One slot per origination; null until first demanded.  Write-once
  /// under mutex_, value deterministic (see header comment).
  mutable std::vector<std::shared_ptr<const sim::DeltaState>> cache_;
};

}  // namespace bgpolicy::serve
