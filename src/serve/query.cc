#include "serve/query.h"

#include <algorithm>
#include <array>
#include <exception>
#include <utility>

#include "asrel/relationships.h"
#include "asrel/tier_classify.h"
#include "bgp/decision.h"
#include "core/artifact_store.h"
#include "core/path_availability.h"
#include "serve/wire.h"
#include "sim/delta_engine.h"

namespace bgpolicy::serve {

namespace {

using util::AsNumber;

std::vector<std::uint8_t> ok_response(wire::Writer body) {
  wire::Writer out;
  out.put(static_cast<std::uint8_t>(QueryStatus::kOk));
  std::vector<std::uint8_t> result = out.take();
  const std::vector<std::uint8_t> inner = body.take();
  result.insert(result.end(), inner.begin(), inner.end());
  return result;
}

std::vector<std::uint8_t> error_response(std::string_view message) {
  wire::Writer out;
  out.put(static_cast<std::uint8_t>(QueryStatus::kError));
  out.put_string(message);
  return out.take();
}

std::vector<std::uint8_t> answer_server_info(const Snapshot& snapshot) {
  wire::Writer body;
  body.put(snapshot.version);
  body.put_string(snapshot.scenario_name);
  body.put_string(snapshot.scenario_key);
  body.put_string(snapshot.analyses_digest);
  body.put(static_cast<std::uint64_t>(snapshot.analyses.vantages.size()));
  body.put(static_cast<std::uint64_t>(
      snapshot.observations.paths.path_count()));
  body.put(static_cast<std::uint64_t>(
      snapshot.inference.inferred.edge_count()));
  return ok_response(std::move(body));
}

std::vector<std::uint8_t> answer_sa_prevalence(
    std::span<const std::uint8_t> request, const Snapshot& snapshot) {
  wire::Reader r(request);
  const AsNumber vantage(r.get<std::uint32_t>());
  r.expect_end();
  const core::VantageAnalysis* analysis =
      snapshot.analyses.find(vantage);
  if (analysis == nullptr) {
    return error_response("no analysis recorded for AS " +
                          util::to_string(vantage));
  }
  const core::SaAnalysis& sa = analysis->sa;
  wire::Writer body;
  body.put(sa.provider.value());
  body.put(static_cast<std::uint64_t>(sa.customer_prefixes));
  body.put(static_cast<std::uint64_t>(sa.sa_count));
  body.put(sa.percent_sa);
  body.put(static_cast<std::uint32_t>(sa.sa_prefixes.size()));
  for (const core::SaPrefix& entry : sa.sa_prefixes) {
    body.put(entry.prefix.network());
    body.put(entry.prefix.length());
    body.put(entry.origin.value());
    body.put(entry.next_hop.value());
    body.put(static_cast<std::uint8_t>(entry.next_hop_rel));
  }
  return ok_response(std::move(body));
}

std::vector<std::uint8_t> answer_homing(std::span<const std::uint8_t> request,
                                        const Snapshot& snapshot) {
  wire::Reader r(request);
  const std::uint32_t network = r.get<std::uint32_t>();
  const std::uint8_t length = r.get<std::uint8_t>();
  r.expect_end();
  if (length > 32) return error_response("prefix length exceeds 32");
  const bgp::Prefix prefix(network, length);

  // Observed origins of the prefix (rightmost hop of every indexed path),
  // classified by provider count in the *inferred* graph — multihomed at
  // >= 2 providers, the paper's Table 8 criterion.  Several origins means
  // MOAS/anycast.
  std::vector<AsNumber> origins;
  for (const auto path : snapshot.observations.paths.paths_for_prefix(prefix)) {
    if (!path.empty()) origins.push_back(path.back());
  }
  std::sort(origins.begin(), origins.end());
  origins.erase(std::unique(origins.begin(), origins.end()), origins.end());
  if (origins.empty()) {
    return error_response("prefix " + prefix.to_string() +
                          " not observed in any indexed path");
  }
  wire::Writer body;
  body.put(static_cast<std::uint32_t>(origins.size()));
  for (const AsNumber origin : origins) {
    const std::size_t providers =
        snapshot.inference.inferred_graph.providers(origin).size();
    body.put(origin.value());
    body.put(static_cast<std::uint32_t>(providers));
    body.put(static_cast<std::uint8_t>(providers >= 2 ? 1 : 0));
  }
  return ok_response(std::move(body));
}

std::vector<std::uint8_t> answer_causes(std::span<const std::uint8_t> request,
                                        const Snapshot& snapshot) {
  wire::Reader r(request);
  const AsNumber vantage(r.get<std::uint32_t>());
  r.expect_end();
  const core::VantageAnalysis* analysis = snapshot.analyses.find(vantage);
  if (analysis == nullptr) {
    return error_response("no analysis recorded for AS " +
                          util::to_string(vantage));
  }
  const core::CausesAnalysis& causes = analysis->causes;
  wire::Writer body;
  body.put(causes.provider.value());
  body.put(static_cast<std::uint64_t>(causes.sa_total));
  body.put(static_cast<std::uint64_t>(causes.splitting));
  body.put(static_cast<std::uint64_t>(causes.aggregating));
  body.put(static_cast<std::uint64_t>(causes.identified));
  body.put(static_cast<std::uint64_t>(causes.announce_to_direct));
  body.put(static_cast<std::uint64_t>(causes.withheld_from_direct));
  body.put(causes.percent_identified);
  body.put(causes.percent_announce);
  body.put(causes.percent_withheld);
  return ok_response(std::move(body));
}

std::vector<std::uint8_t> answer_path_availability(
    std::span<const std::uint8_t> request, const Snapshot& snapshot) {
  wire::Reader r(request);
  const AsNumber vantage(r.get<std::uint32_t>());
  r.expect_end();
  const auto it = snapshot.sim.sim.looking_glass.find(vantage);
  if (it == snapshot.sim.sim.looking_glass.end()) {
    return error_response("AS " + util::to_string(vantage) +
                          " is not a looking-glass vantage");
  }
  const core::PathAvailability availability = core::analyze_path_availability(
      it->second, vantage, snapshot.inference.inferred_graph);
  wire::Writer body;
  body.put(availability.vantage.value());
  body.put(static_cast<std::uint64_t>(availability.customer_prefixes));
  body.put(availability.mean_available);
  body.put(availability.mean_potential);
  body.put(availability.availability_ratio);
  body.put(static_cast<std::uint64_t>(availability.single_path_prefixes));
  const auto& bins = availability.available_histogram.bins();
  body.put(static_cast<std::uint32_t>(bins.size()));
  for (const auto& [key, weight] : bins) {
    body.put(static_cast<std::int64_t>(key));
    body.put(static_cast<std::uint64_t>(weight));
  }
  return ok_response(std::move(body));
}

std::vector<std::uint8_t> answer_rerun_infer(
    std::span<const std::uint8_t> request, const Snapshot& snapshot) {
  wire::Reader r(request);
  asrel::GaoParams params;
  params.peer_degree_ratio = r.get<double>();
  params.sibling_balance = r.get<double>();
  params.detect_peers = r.get<std::uint8_t>() != 0;
  params.detect_clique = r.get<std::uint8_t>() != 0;
  params.clique_degree_fraction = r.get<double>();
  params.peer_candidate_min_share = r.get<double>();
  r.expect_end();
  // Worker knobs never change products (determinism contract); one query
  // runs sequentially rather than spinning a pool per request.
  params.threads = 1;

  const core::InferenceProducts products =
      core::infer_relationships(snapshot.observations, params);

  std::array<std::uint64_t, 4> edge_counts{};
  products.inferred.for_each(
      [&](AsNumber, AsNumber, asrel::EdgeType type) {
        ++edge_counts[static_cast<std::size_t>(type)];
      });
  std::array<std::uint64_t, 4> level_counts{};
  for (const auto& [as, level] : products.tiers.level) {
    if (level >= 1 && level <= 4) ++level_counts[level - 1];
  }
  const std::string digest =
      core::stable_digest_hex(asrel::canonical_serialize(products.inferred) +
                              asrel::canonical_serialize(products.tiers));

  wire::Writer body;
  body.put(static_cast<std::uint64_t>(products.inferred.edge_count()));
  for (const std::uint64_t count : edge_counts) body.put(count);
  body.put(static_cast<std::uint32_t>(products.tiers.tier1.size()));
  for (const AsNumber as : products.tiers.tier1) body.put(as.value());
  for (const std::uint64_t count : level_counts) body.put(count);
  body.put_string(digest);
  return ok_response(std::move(body));
}

std::vector<std::uint8_t> answer_what_if_failure(
    std::span<const std::uint8_t> request, const Snapshot& snapshot) {
  wire::Reader r(request);
  const AsNumber vantage(r.get<std::uint32_t>());
  const std::uint16_t edge_count = r.get<std::uint16_t>();
  std::vector<std::pair<AsNumber, AsNumber>> edges;
  edges.reserve(edge_count);
  for (std::uint16_t i = 0; i < edge_count; ++i) {
    const AsNumber a(r.get<std::uint32_t>());
    const AsNumber b(r.get<std::uint32_t>());
    edges.emplace_back(a, b);
  }
  const std::uint16_t prefix_count = r.get<std::uint16_t>();
  std::vector<bgp::Prefix> filter;
  filter.reserve(prefix_count);
  for (std::uint16_t i = 0; i < prefix_count; ++i) {
    const std::uint32_t network = r.get<std::uint32_t>();
    const std::uint8_t length = r.get<std::uint8_t>();
    if (length > 32) return error_response("prefix length exceeds 32");
    filter.emplace_back(network, length);
  }
  r.expect_end();

  if (snapshot.what_if == nullptr) {
    return error_response("snapshot has no what-if substrate");
  }
  if (edges.empty()) {
    return error_response("what_if_failure requires at least one edge");
  }
  const core::GroundTruth& truth = snapshot.what_if->truth();
  const topo::AsGraph& graph = truth.topo.graph;
  if (!graph.contains(vantage)) {
    return error_response("AS " + util::to_string(vantage) +
                          " not in ground-truth graph");
  }
  for (const auto& [a, b] : edges) {
    if (!graph.contains(a) || !graph.contains(b)) {
      return error_response("edge endpoint AS " +
                            util::to_string(graph.contains(a) ? b : a) +
                            " not in ground-truth graph");
    }
  }

  const auto selected = [&](const bgp::Prefix& prefix) {
    return filter.empty() ||
           std::find(filter.begin(), filter.end(), prefix) != filter.end();
  };
  // Distinct target prefixes in origination order — the deterministic
  // response order (MOAS prefixes appear once, candidates merged below).
  std::vector<bgp::Prefix> targets;
  for (const sim::Origination& o : truth.originations) {
    if (!selected(o.prefix)) continue;
    if (std::find(targets.begin(), targets.end(), o.prefix) == targets.end()) {
      targets.push_back(o.prefix);
    }
  }
  if (targets.empty()) {
    return error_response("no matching origination in snapshot");
  }

  sim::Perturbation perturbation;
  perturbation.fail_edges = edges;
  const sim::DeltaEngine& engine = snapshot.what_if->engine();
  sim::DeltaWorkspace ws;
  sim::DeltaState branch;

  const auto summarize = [](const std::optional<bgp::Route>& route) {
    WhatIfRouteState s;
    if (route.has_value()) {
      s.reachable = true;
      s.via = route->next_hop_as().value_or(route->learned_from).value();
      s.origin = route->origin_as().value();
      s.path_length = static_cast<std::uint32_t>(route->path.length());
    }
    return s;
  };

  std::uint64_t wave_events = 0;
  std::uint32_t reachable_before = 0;
  std::uint32_t reachable_after = 0;
  wire::Writer body;
  body.put(vantage.value());
  body.put(static_cast<std::uint32_t>(edges.size()));
  body.put(static_cast<std::uint32_t>(targets.size()));
  for (const bgp::Prefix& prefix : targets) {
    // MOAS: every active origination of the prefix contributes one
    // candidate per world; decision-process tie-break across them (the
    // same merge core/spec_verify.cc's Timeline does).
    std::vector<bgp::Route> before_cands;
    std::vector<bgp::Route> after_cands;
    for (std::size_t i = 0; i < truth.originations.size(); ++i) {
      if (truth.originations[i].prefix != prefix) continue;
      const std::shared_ptr<const sim::DeltaState> base =
          snapshot.what_if->base_state(i);
      if (auto route = engine.route_at(*base, vantage)) {
        before_cands.push_back(std::move(*route));
      }
      // Branch a private deep copy and fail the sessions incrementally;
      // the shared base stays pristine for the next query.
      branch.assign_from(*base);
      wave_events += engine.apply(branch, perturbation, ws).events;
      if (auto route = engine.route_at(branch, vantage)) {
        after_cands.push_back(std::move(*route));
      }
    }
    const auto pick = [](std::vector<bgp::Route>& cands)
        -> std::optional<bgp::Route> {
      if (cands.empty()) return std::nullopt;
      const auto winner = bgp::select_best(cands);
      return cands[winner.value_or(0)];
    };
    const std::optional<bgp::Route> before = pick(before_cands);
    const std::optional<bgp::Route> after = pick(after_cands);
    if (before.has_value()) ++reachable_before;
    if (after.has_value()) ++reachable_after;
    const WhatIfRouteState before_state = summarize(before);
    const WhatIfRouteState after_state = summarize(after);
    body.put(prefix.network());
    body.put(prefix.length());
    for (const WhatIfRouteState& s : {before_state, after_state}) {
      body.put(static_cast<std::uint8_t>(s.reachable ? 1 : 0));
      body.put(s.via);
      body.put(s.origin);
      body.put(s.path_length);
    }
    body.put(static_cast<std::uint8_t>(before != after ? 1 : 0));
  }

  body.put(wave_events);
  body.put(reachable_before);
  body.put(reachable_after);
  return ok_response(std::move(body));
}

}  // namespace

const char* to_string(QueryKind kind) {
  switch (kind) {
    case QueryKind::kServerInfo:
      return "server_info";
    case QueryKind::kSaPrevalence:
      return "sa_prevalence";
    case QueryKind::kHoming:
      return "homing";
    case QueryKind::kCauses:
      return "causes";
    case QueryKind::kPathAvailability:
      return "path_availability";
    case QueryKind::kRerunInfer:
      return "rerun_infer";
    case QueryKind::kWhatIfFailure:
      return "what_if_failure";
  }
  return "unknown";
}

bool known_kind(std::uint16_t kind) {
  return kind >= static_cast<std::uint16_t>(QueryKind::kServerInfo) &&
         kind <= static_cast<std::uint16_t>(QueryKind::kWhatIfFailure);
}

std::vector<std::uint8_t> encode_server_info_request() { return {}; }

std::vector<std::uint8_t> encode_as_request(util::AsNumber as) {
  wire::Writer w;
  w.put(as.value());
  return w.take();
}

std::vector<std::uint8_t> encode_prefix_request(const bgp::Prefix& prefix) {
  wire::Writer w;
  w.put(prefix.network());
  w.put(prefix.length());
  return w.take();
}

std::vector<std::uint8_t> encode_infer_request(
    const asrel::GaoParams& params) {
  wire::Writer w;
  w.put(params.peer_degree_ratio);
  w.put(params.sibling_balance);
  w.put(static_cast<std::uint8_t>(params.detect_peers ? 1 : 0));
  w.put(static_cast<std::uint8_t>(params.detect_clique ? 1 : 0));
  w.put(params.clique_degree_fraction);
  w.put(params.peer_candidate_min_share);
  return w.take();
}

std::vector<std::uint8_t> encode_what_if_request(
    util::AsNumber vantage,
    std::span<const std::pair<util::AsNumber, util::AsNumber>> edges,
    std::span<const bgp::Prefix> prefixes) {
  wire::Writer w;
  w.put(vantage.value());
  w.put(static_cast<std::uint16_t>(edges.size()));
  for (const auto& [a, b] : edges) {
    w.put(a.value());
    w.put(b.value());
  }
  w.put(static_cast<std::uint16_t>(prefixes.size()));
  for (const bgp::Prefix& prefix : prefixes) {
    w.put(prefix.network());
    w.put(prefix.length());
  }
  return w.take();
}

std::optional<ResponseView> split_response(
    std::span<const std::uint8_t> payload) {
  if (payload.empty()) return std::nullopt;
  ResponseView view;
  if (payload[0] == static_cast<std::uint8_t>(QueryStatus::kOk)) {
    view.status = QueryStatus::kOk;
  } else if (payload[0] == static_cast<std::uint8_t>(QueryStatus::kError)) {
    view.status = QueryStatus::kError;
  } else {
    return std::nullopt;
  }
  view.body = payload.subspan(1);
  return view;
}

std::string decode_error(std::span<const std::uint8_t> body) {
  try {
    wire::Reader r(body);
    std::string message = r.get_string();
    r.expect_end();
    return message;
  } catch (const std::exception&) {
    return {};
  }
}

std::optional<ServerInfo> decode_server_info(
    std::span<const std::uint8_t> body) {
  try {
    wire::Reader r(body);
    ServerInfo info;
    info.version = r.get<std::uint64_t>();
    info.scenario_name = r.get_string();
    info.scenario_key = r.get_string();
    info.analyses_digest = r.get_string();
    info.vantage_count = r.get<std::uint64_t>();
    info.observed_paths = r.get<std::uint64_t>();
    info.inferred_edges = r.get<std::uint64_t>();
    r.expect_end();
    return info;
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

std::optional<WhatIfResult> decode_what_if(
    std::span<const std::uint8_t> body) {
  try {
    wire::Reader r(body);
    WhatIfResult result;
    result.vantage = r.get<std::uint32_t>();
    result.edge_count = r.get<std::uint32_t>();
    const std::uint32_t entry_count = r.get<std::uint32_t>();
    result.entries.reserve(entry_count);
    for (std::uint32_t i = 0; i < entry_count; ++i) {
      WhatIfEntry entry;
      const std::uint32_t network = r.get<std::uint32_t>();
      const std::uint8_t length = r.get<std::uint8_t>();
      if (length > 32) return std::nullopt;
      entry.prefix = bgp::Prefix(network, length);
      for (WhatIfRouteState* side : {&entry.before, &entry.after}) {
        side->reachable = r.get<std::uint8_t>() != 0;
        side->via = r.get<std::uint32_t>();
        side->origin = r.get<std::uint32_t>();
        side->path_length = r.get<std::uint32_t>();
      }
      entry.changed = r.get<std::uint8_t>() != 0;
      result.entries.push_back(entry);
    }
    result.wave_events = r.get<std::uint64_t>();
    result.reachable_before = r.get<std::uint32_t>();
    result.reachable_after = r.get<std::uint32_t>();
    r.expect_end();
    return result;
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

std::vector<std::uint8_t> answer(QueryKind kind,
                                 std::span<const std::uint8_t> request,
                                 const Snapshot& snapshot) {
  try {
    switch (kind) {
      case QueryKind::kServerInfo: {
        wire::Reader r(request);
        r.expect_end();
        return answer_server_info(snapshot);
      }
      case QueryKind::kSaPrevalence:
        return answer_sa_prevalence(request, snapshot);
      case QueryKind::kHoming:
        return answer_homing(request, snapshot);
      case QueryKind::kCauses:
        return answer_causes(request, snapshot);
      case QueryKind::kPathAvailability:
        return answer_path_availability(request, snapshot);
      case QueryKind::kRerunInfer:
        return answer_rerun_infer(request, snapshot);
      case QueryKind::kWhatIfFailure:
        return answer_what_if_failure(request, snapshot);
    }
    return error_response("unknown query kind");
  } catch (const std::exception& error) {
    return error_response(error.what());
  }
}

}  // namespace bgpolicy::serve
