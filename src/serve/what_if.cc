#include "serve/what_if.h"

#include <algorithm>
#include <utility>

#include "util/ensure.h"

namespace bgpolicy::serve {

namespace {

std::shared_ptr<const core::GroundTruth> checked(
    std::shared_ptr<const core::GroundTruth> truth) {
  util::ensure(truth != nullptr, "WhatIfBase: null ground truth");
  return truth;
}

}  // namespace

WhatIfBase::WhatIfBase(std::shared_ptr<const core::GroundTruth> truth,
                       sim::PropagationOptions options)
    : truth_(checked(std::move(truth))),
      context_(truth_->topo.graph, truth_->gen.policies),
      engine_(context_, options),
      cache_(truth_->originations.size()) {}

std::shared_ptr<const sim::DeltaState> WhatIfBase::base_state(
    std::size_t index) const {
  util::ensure(index < cache_.size(), "WhatIfBase: origination out of range");
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (cache_[index] != nullptr) return cache_[index];
  }
  // Converge outside the lock: a slow first demand never serializes other
  // queries.  Losing an install race is fine — converge is deterministic,
  // so both candidates are value-identical.
  auto state = std::make_shared<sim::DeltaState>();
  sim::DeltaWorkspace ws;
  engine_.converge(truth_->originations[index], nullptr, *state, ws);
  const std::lock_guard<std::mutex> lock(mutex_);
  if (cache_[index] == nullptr) cache_[index] = std::move(state);
  return cache_[index];
}

std::size_t WhatIfBase::converged_count() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return static_cast<std::size_t>(
      std::count_if(cache_.begin(), cache_.end(),
                    [](const auto& slot) { return slot != nullptr; }));
}

}  // namespace bgpolicy::serve
