#include "serve/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace bgpolicy::serve {

namespace {

[[noreturn]] void throw_errno(const char* what) {
  throw std::runtime_error(std::string(what) + ": " +
                           std::strerror(errno));
}

void set_socket_timeout(int fd, int option,
                        std::chrono::milliseconds timeout) {
  if (timeout.count() <= 0) return;
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(timeout.count() / 1000);
  tv.tv_usec = static_cast<suseconds_t>((timeout.count() % 1000) * 1000);
  if (::setsockopt(fd, SOL_SOCKET, option, &tv, sizeof(tv)) != 0) {
    throw_errno("setsockopt(SO_*TIMEO)");
  }
}

}  // namespace

BlockingClient::BlockingClient(std::uint16_t port,
                               std::chrono::milliseconds timeout) {
  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) throw_errno("socket");
  set_socket_timeout(fd_, SO_RCVTIMEO, timeout);
  set_socket_timeout(fd_, SO_SNDTIMEO, timeout);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    const int saved = errno;
    ::close(fd_);
    fd_ = -1;
    errno = saved;
    throw_errno("connect");
  }
}

BlockingClient::~BlockingClient() {
  if (fd_ >= 0) ::close(fd_);
}

BlockingClient::BlockingClient(BlockingClient&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      eof_(other.eof_),
      next_request_id_(other.next_request_id_),
      reader_(std::move(other.reader_)) {}

BlockingClient& BlockingClient::operator=(BlockingClient&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = std::exchange(other.fd_, -1);
    eof_ = other.eof_;
    next_request_id_ = other.next_request_id_;
    reader_ = std::move(other.reader_);
  }
  return *this;
}

void BlockingClient::send_raw(std::span<const std::uint8_t> bytes) {
  if (fd_ < 0) throw std::runtime_error("client not connected");
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n =
        ::send(fd_, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("send");
    }
    sent += static_cast<std::size_t>(n);
  }
}

std::optional<Frame> BlockingClient::receive() {
  if (fd_ < 0) return std::nullopt;
  std::uint8_t chunk[16 * 1024];
  while (true) {
    if (std::optional<Frame> frame = reader_.next()) return frame;
    if (reader_.malformed() || eof_) return std::nullopt;
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("recv");
    }
    if (n == 0) {
      eof_ = true;
      continue;  // one more next() pass, then nullopt
    }
    reader_.feed({chunk, static_cast<std::size_t>(n)});
  }
}

std::optional<Frame> BlockingClient::call(
    std::uint16_t kind, std::span<const std::uint8_t> payload) {
  Frame request;
  request.kind = kind;
  request.request_id = next_request_id_++;
  request.payload.assign(payload.begin(), payload.end());
  send_raw(encode_frame(request));
  return receive();
}

}  // namespace bgpolicy::serve
