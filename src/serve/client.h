// BlockingClient: a minimal synchronous client for the frame protocol,
// used by the tests and the load generator.  One TCP connection, one
// outstanding request at a time (call() writes a request frame and blocks
// until the matching response frame arrives).
#pragma once

#include <chrono>
#include <cstdint>
#include <optional>
#include <span>

#include "serve/frame.h"

namespace bgpolicy::serve {

class BlockingClient {
 public:
  /// Connects to 127.0.0.1:`port`.  Throws std::runtime_error when the
  /// connection fails.  `timeout` bounds each send/receive syscall
  /// (SO_SNDTIMEO/SO_RCVTIMEO); zero means block forever.
  explicit BlockingClient(std::uint16_t port,
                          std::chrono::milliseconds timeout =
                              std::chrono::milliseconds(10'000));
  ~BlockingClient();

  BlockingClient(BlockingClient&& other) noexcept;
  BlockingClient& operator=(BlockingClient&& other) noexcept;
  BlockingClient(const BlockingClient&) = delete;
  BlockingClient& operator=(const BlockingClient&) = delete;

  /// Sends one request frame and waits for its response.  Returns nullopt
  /// when the server closed the connection or the response stream is
  /// malformed; throws std::runtime_error on socket errors/timeouts.
  [[nodiscard]] std::optional<Frame> call(
      std::uint16_t kind, std::span<const std::uint8_t> payload);

  /// Writes raw bytes to the socket as-is — the tests' tool for feeding
  /// the server garbage and truncated frames.
  void send_raw(std::span<const std::uint8_t> bytes);
  /// Reads one frame (or EOF/malformed → nullopt) without sending.
  [[nodiscard]] std::optional<Frame> receive();
  /// True once the server has closed its side.
  [[nodiscard]] bool closed() const { return fd_ < 0 || eof_; }

 private:
  int fd_ = -1;
  bool eof_ = false;
  std::uint64_t next_request_id_ = 1;
  FrameReader reader_;
};

}  // namespace bgpolicy::serve
