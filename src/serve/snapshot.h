// Read-mostly snapshot registry: the immutable artifact bundle the query
// service answers from, swapped atomically on refresh.
//
// A `Snapshot` is the decoded Simulate/Observe/Infer/Analyze artifacts of
// one experiment run, frozen behind shared_ptr<const>.  `SnapshotRegistry`
// holds the current snapshot in a std::atomic<std::shared_ptr>: readers
// (`current()`) are lock-free pointer loads that never block, and a
// background refresh (`publish()`) swaps in a new snapshot without
// disturbing them — an in-flight query keeps the shared_ptr it grabbed at
// dispatch and finishes on the snapshot it started with, while the old
// snapshot is freed when its last reader drops it.  This is the serving
// half of the determinism contract: artifacts are byte-identical however
// they were computed, so every snapshot of one scenario answers every
// query identically and a mid-run swap is invisible except for the bumped
// version.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "core/experiment.h"
#include "serve/what_if.h"

namespace bgpolicy::serve {

/// One immutable serving state: everything the query kinds read.
/// Constructed by build_snapshot (or tests) and never mutated after
/// publish; `version` is stamped by the registry at publish time.
struct Snapshot {
  std::uint64_t version = 0;
  std::string scenario_name;
  /// core::scenario_cache_key of the scenario this snapshot serves —
  /// clients can correlate answers with store contents.
  std::string scenario_key;
  core::SimArtifact sim;
  core::Observations observations;
  core::InferenceProducts inference;
  core::AnalysisSuite analyses;
  /// stable_digest_hex over canonical_serialize(analyses): the identity a
  /// client (or the swap-consistency test) uses to pin which snapshot a
  /// response came from.
  std::string analyses_digest;
  /// The scenario's ground truth (graph + policies + originations) — the
  /// substrate what-if queries simulate against.  Behind shared_ptr so
  /// Snapshot stays copyable (the refreshers copy-swap snapshots).
  std::shared_ptr<const core::GroundTruth> truth;
  /// Warm what-if substrate over `truth` (kWhatIfFailure); its internal
  /// base-state cache mutates under a lock but answers stay pure functions
  /// of (request, snapshot) — see serve/what_if.h.  Null in test snapshots
  /// that never exercise what-if queries.
  std::shared_ptr<WhatIfBase> what_if;
};

class SnapshotRegistry {
 public:
  /// Stamps the snapshot with the next version number and makes it the
  /// current one (atomic pointer swap; concurrent readers keep whichever
  /// snapshot they already hold).  The snapshot must not be mutated after
  /// this call.
  void publish(std::shared_ptr<Snapshot> snapshot);

  /// The current snapshot — a lock-free load; never blocks, never null
  /// after the first publish.  Callers hold the returned pointer for the
  /// duration of one query so a concurrent publish cannot pull state out
  /// from under them.
  [[nodiscard]] std::shared_ptr<const Snapshot> current() const {
    return current_.load(std::memory_order_acquire);
  }

  /// Number of snapshots published so far (0 = none yet).
  [[nodiscard]] std::uint64_t published() const {
    return published_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::shared_ptr<const Snapshot>> current_;
  std::atomic<std::uint64_t> published_{0};
};

/// Runs the scenario's experiment through Analyze (honoring
/// options.threads/store — a populated store makes refresh a pure decode)
/// and moves the artifacts into a publishable snapshot.  The snapshot's
/// answers are byte-identical at any options.threads value.
[[nodiscard]] std::shared_ptr<Snapshot> build_snapshot(
    const core::Scenario& scenario, const core::RunOptions& options = {});

}  // namespace bgpolicy::serve
