// Bounds-checked little-endian payload (de)serialization for the query
// service's frame payloads — the same Writer/Reader discipline as the
// artifact codec (io/artifact_codec.cc), sized for small wire messages:
// strings carry a u32 length prefix and every read is range-checked.
// Reader throws std::invalid_argument on truncated or trailing input; the
// query engine turns that into an error *response* (the frame itself was
// well-formed — only transport-level defects cost the connection).
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <vector>

namespace bgpolicy::serve::wire {

class Writer {
 public:
  template <typename T>
  void put(T value) {
    static_assert(std::is_trivially_copyable_v<T>);
    std::uint8_t raw[sizeof(T)];
    std::memcpy(raw, &value, sizeof(T));
    out_.insert(out_.end(), raw, raw + sizeof(T));
  }

  void put_string(std::string_view text) {
    put(static_cast<std::uint32_t>(text.size()));
    out_.insert(out_.end(),
                reinterpret_cast<const std::uint8_t*>(text.data()),
                reinterpret_cast<const std::uint8_t*>(text.data()) +
                    text.size());
  }

  [[nodiscard]] std::vector<std::uint8_t> take() { return std::move(out_); }
  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const { return out_; }

 private:
  std::vector<std::uint8_t> out_;
};

class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  template <typename T>
  [[nodiscard]] T get() {
    static_assert(std::is_trivially_copyable_v<T>);
    if (pos_ + sizeof(T) > bytes_.size()) {
      throw std::invalid_argument("payload: truncated");
    }
    T value;
    std::memcpy(&value, bytes_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return value;
  }

  [[nodiscard]] std::string get_string() {
    const std::uint32_t size = get<std::uint32_t>();
    if (pos_ + size > bytes_.size()) {
      throw std::invalid_argument("payload: truncated string");
    }
    std::string text(reinterpret_cast<const char*>(bytes_.data() + pos_),
                     size);
    pos_ += size;
    return text;
  }

  /// Every request decoder ends with this: trailing bytes mean the client
  /// and server disagree about the request shape — better a loud error
  /// than a silently ignored suffix.
  void expect_end() const {
    if (pos_ != bytes_.size()) {
      throw std::invalid_argument("payload: trailing bytes");
    }
  }

  [[nodiscard]] std::size_t remaining() const { return bytes_.size() - pos_; }

 private:
  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;
};

}  // namespace bgpolicy::serve::wire
