#include "serve/snapshot.h"

#include <stdexcept>
#include <utility>

#include "core/artifact_store.h"

namespace bgpolicy::serve {

void SnapshotRegistry::publish(std::shared_ptr<Snapshot> snapshot) {
  if (snapshot == nullptr) {
    throw std::invalid_argument("SnapshotRegistry: cannot publish null");
  }
  snapshot->version = published_.fetch_add(1, std::memory_order_relaxed) + 1;
  current_.store(std::shared_ptr<const Snapshot>(std::move(snapshot)),
                 std::memory_order_release);
}

std::shared_ptr<Snapshot> build_snapshot(const core::Scenario& scenario,
                                         const core::RunOptions& options) {
  core::RunOptions run = options;
  run.until = core::Stage::kAnalyze;
  core::Experiment experiment(scenario, run);
  experiment.run();
  // Force ground-truth materialization before stealing the artifacts: on a
  // store hit the run above decodes later stages without ever synthesizing,
  // but what-if queries need the truth substrate.
  (void)experiment.truth();

  auto snapshot = std::make_shared<Snapshot>();
  snapshot->scenario_name = scenario.name;
  snapshot->scenario_key = core::scenario_cache_key(scenario);
  core::Experiment::StageArtifacts artifacts =
      std::move(experiment).take_artifacts();
  snapshot->sim = std::move(*artifacts.sim);
  snapshot->observations = std::move(*artifacts.observations);
  snapshot->inference = std::move(*artifacts.inference);
  snapshot->analyses = std::move(*artifacts.analyses);
  snapshot->analyses_digest =
      core::stable_digest_hex(core::canonical_serialize(snapshot->analyses));
  snapshot->truth = std::make_shared<const core::GroundTruth>(
      std::move(*artifacts.truth));
  snapshot->what_if =
      std::make_shared<WhatIfBase>(snapshot->truth, scenario.propagation);
  return snapshot;
}

}  // namespace bgpolicy::serve
