#include "serve/frame.h"

#include <cstring>

#include "core/artifact_store.h"

namespace bgpolicy::serve {

namespace {

constexpr char kMagic[4] = {'B', 'G', 'P', 'Q'};
constexpr std::uint64_t kChecksumSeed = 0xcbf29ce484222325ULL;

template <typename T>
void put_le(std::vector<std::uint8_t>& out, T value) {
  static_assert(std::is_trivially_copyable_v<T>);
  std::uint8_t raw[sizeof(T)];
  std::memcpy(raw, &value, sizeof(T));
  out.insert(out.end(), raw, raw + sizeof(T));
}

template <typename T>
T get_le(const std::uint8_t* bytes) {
  T value;
  std::memcpy(&value, bytes, sizeof(T));
  return value;
}

/// Frame checksum over header fields AND payload: the seed folds in kind,
/// request id, and length before hashing the payload bytes, so a bit flip
/// anywhere in the frame — not just the payload — fails verification.
std::uint64_t frame_checksum(std::uint16_t kind, std::uint64_t request_id,
                             std::uint32_t length,
                             std::span<const std::uint8_t> payload) {
  std::uint8_t header[14];
  std::memcpy(header, &kind, 2);
  std::memcpy(header + 2, &request_id, 8);
  std::memcpy(header + 10, &length, 4);
  const std::uint64_t seed =
      core::fnv1a64(std::span<const std::uint8_t>(header, sizeof(header)),
                    kChecksumSeed);
  return core::fnv1a64(payload, seed);
}

}  // namespace

void append_frame(std::vector<std::uint8_t>& out, const Frame& frame) {
  out.reserve(out.size() + kFrameHeaderBytes + frame.payload.size());
  out.insert(out.end(), kMagic, kMagic + sizeof(kMagic));
  put_le(out, kProtocolVersion);
  put_le(out, frame.kind);
  put_le(out, frame.request_id);
  put_le(out, static_cast<std::uint32_t>(frame.payload.size()));
  put_le(out, frame_checksum(frame.kind, frame.request_id,
                             static_cast<std::uint32_t>(frame.payload.size()),
                             frame.payload));
  out.insert(out.end(), frame.payload.begin(), frame.payload.end());
}

std::vector<std::uint8_t> encode_frame(const Frame& frame) {
  std::vector<std::uint8_t> out;
  append_frame(out, frame);
  return out;
}

DecodeResult decode_frame(std::span<const std::uint8_t> bytes) {
  DecodeResult result;
  const auto malformed = [&](std::string why) {
    result.status = DecodeStatus::kMalformed;
    result.error = std::move(why);
    return result;
  };

  if (bytes.empty()) {
    result.status = DecodeStatus::kNeedMore;
    return result;
  }
  // Reject a wrong magic from the very first bytes: a peer speaking a
  // different protocol should be cut off before it can stream a "header"
  // worth of garbage.
  const std::size_t magic_have = std::min(bytes.size(), sizeof(kMagic));
  if (std::memcmp(bytes.data(), kMagic, magic_have) != 0) {
    return malformed("frame: bad magic");
  }
  if (bytes.size() < kFrameHeaderBytes) {
    result.status = DecodeStatus::kNeedMore;
    return result;
  }

  const std::uint16_t version = get_le<std::uint16_t>(bytes.data() + 4);
  if (version != kProtocolVersion) {
    return malformed("frame: unsupported protocol version " +
                     std::to_string(version));
  }
  const std::uint16_t kind = get_le<std::uint16_t>(bytes.data() + 6);
  const std::uint64_t request_id = get_le<std::uint64_t>(bytes.data() + 8);
  const std::uint32_t length = get_le<std::uint32_t>(bytes.data() + 16);
  if (length > kMaxPayloadBytes) {
    return malformed("frame: payload length " + std::to_string(length) +
                     " exceeds cap");
  }
  const std::uint64_t checksum = get_le<std::uint64_t>(bytes.data() + 20);

  if (bytes.size() < kFrameHeaderBytes + length) {
    result.status = DecodeStatus::kNeedMore;
    return result;
  }
  const std::span<const std::uint8_t> payload =
      bytes.subspan(kFrameHeaderBytes, length);
  if (frame_checksum(kind, request_id, length, payload) != checksum) {
    return malformed("frame: checksum mismatch");
  }

  result.status = DecodeStatus::kFrame;
  result.frame.kind = kind;
  result.frame.request_id = request_id;
  result.frame.payload.assign(payload.begin(), payload.end());
  result.consumed = kFrameHeaderBytes + length;
  return result;
}

void FrameReader::feed(std::span<const std::uint8_t> bytes) {
  if (malformed_) return;  // the connection is already condemned
  // Compact once the consumed prefix dominates the buffer, so long-lived
  // connections never grow the buffer past one partial frame.
  if (pos_ > 0 && pos_ >= buffer_.size() / 2) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(pos_));
    pos_ = 0;
  }
  buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
}

std::optional<Frame> FrameReader::next() {
  if (malformed_) return std::nullopt;
  const std::span<const std::uint8_t> pending =
      std::span<const std::uint8_t>(buffer_).subspan(pos_);
  if (pending.empty()) return std::nullopt;
  DecodeResult result = decode_frame(pending);
  switch (result.status) {
    case DecodeStatus::kNeedMore:
      return std::nullopt;
    case DecodeStatus::kMalformed:
      malformed_ = true;
      error_ = std::move(result.error);
      return std::nullopt;
    case DecodeStatus::kFrame:
      pos_ += result.consumed;
      return std::move(result.frame);
  }
  return std::nullopt;
}

}  // namespace bgpolicy::serve
