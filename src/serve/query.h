// The query kinds the policy-query service answers, their payload
// encodings, and the engine that evaluates them against one immutable
// Snapshot (serve/snapshot.h).
//
// Every answer is a *pure function* of (request payload, snapshot
// artifacts).  The artifacts themselves are byte-identical at any
// thread count (the repo-wide determinism contract), so a response is
// byte-identical whether it was computed by the daemon at --threads 16 or
// by calling `answer()` directly against library-built artifacts — the
// equivalence the end-to-end tests pin.
//
// Response payload shape (after the frame header, serve/frame.h):
//   u8 status            0 = ok, 1 = error
//   ok:    kind-specific body (docs/QUERY_SERVICE.md)
//   error: u32-length-prefixed message
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "asrel/gao_inference.h"
#include "bgp/prefix.h"
#include "serve/snapshot.h"
#include "util/ids.h"

namespace bgpolicy::serve {

enum class QueryKind : std::uint16_t {
  /// Snapshot identity: version, scenario, digests, corpus sizes.  The
  /// probe clients use to observe an atomic snapshot swap.
  kServerInfo = 1,
  /// SA-prevalence analysis of one vantage AS (paper Table 5): request
  /// u32 AS; response counters + the SA prefix list.
  kSaPrevalence = 2,
  /// Homing of one prefix (paper Table 8 flavor): request prefix; response
  /// the observed origin ASes with inferred provider counts.
  kHoming = 3,
  /// Cause attribution of one vantage's SA prefixes (paper Table 9):
  /// request u32 AS; response the Case-1/2/3 counters.
  kCauses = 4,
  /// Connectivity-vs-reachability for one looking-glass vantage (the
  /// paper's impact claim): request u32 AS; response availability means +
  /// histogram.
  kPathAvailability = 5,
  /// What-if re-inference: request client-supplied GaoParams; the server
  /// re-runs Infer against the snapshot's Observations and responds with
  /// the relationship/tier summary and its digest.
  kRerunInfer = 6,
  /// What-if session failure: request a vantage AS, hypothetical failed
  /// edges, and optional prefix filter; the server branches warm delta
  /// states off the snapshot's converged ground-truth routing
  /// (serve/what_if.h), applies the failures incrementally, and responds
  /// with the vantage's before/after route per prefix.
  kWhatIfFailure = 7,
};

/// Set on the kind field of every response frame (request kind | bit).
inline constexpr std::uint16_t kResponseBit = 0x8000;

[[nodiscard]] const char* to_string(QueryKind kind);
/// True for exactly the request kinds the engine can answer.
[[nodiscard]] bool known_kind(std::uint16_t kind);

/// Status byte leading every response payload.
enum class QueryStatus : std::uint8_t { kOk = 0, kError = 1 };

// ---------------------------------------------------------------- requests --
// Client-side request payload builders (the daemon decodes these).

[[nodiscard]] std::vector<std::uint8_t> encode_server_info_request();
/// kSaPrevalence / kCauses / kPathAvailability: one u32 AS number.
[[nodiscard]] std::vector<std::uint8_t> encode_as_request(util::AsNumber as);
/// kHoming: u32 network + u8 length.
[[nodiscard]] std::vector<std::uint8_t> encode_prefix_request(
    const bgp::Prefix& prefix);
/// kRerunInfer: the GaoParams knobs (threads excluded — worker counts
/// never change products, so they are not part of the query identity).
[[nodiscard]] std::vector<std::uint8_t> encode_infer_request(
    const asrel::GaoParams& params);
/// kWhatIfFailure: u32 vantage, u16 edge count + (u32, u32) per failed
/// session, u16 prefix count + (u32 network, u8 length) per prefix.  An
/// empty prefix list means "every originated prefix".
[[nodiscard]] std::vector<std::uint8_t> encode_what_if_request(
    util::AsNumber vantage,
    std::span<const std::pair<util::AsNumber, util::AsNumber>> edges,
    std::span<const bgp::Prefix> prefixes = {});

// --------------------------------------------------------------- responses --

/// Decoded kServerInfo response body.
struct ServerInfo {
  std::uint64_t version = 0;
  std::string scenario_name;
  std::string scenario_key;
  std::string analyses_digest;
  std::uint64_t vantage_count = 0;
  std::uint64_t observed_paths = 0;
  std::uint64_t inferred_edges = 0;
};

/// Splits a response payload into (status, body); nullopt when the payload
/// is empty.  On kError the body is the message string.
struct ResponseView {
  QueryStatus status = QueryStatus::kOk;
  std::span<const std::uint8_t> body;
};
[[nodiscard]] std::optional<ResponseView> split_response(
    std::span<const std::uint8_t> payload);

/// Decodes the error message of a kError response body (empty on defect).
[[nodiscard]] std::string decode_error(std::span<const std::uint8_t> body);

/// Decodes a kServerInfo ok-body; nullopt on malformed bytes.
[[nodiscard]] std::optional<ServerInfo> decode_server_info(
    std::span<const std::uint8_t> body);

/// One side (before or after) of a what-if entry.
struct WhatIfRouteState {
  bool reachable = false;
  std::uint32_t via = 0;          // next-hop AS (origin itself when local)
  std::uint32_t origin = 0;       // originating AS
  std::uint32_t path_length = 0;  // AS-path length (prepends included)
  friend bool operator==(const WhatIfRouteState&,
                         const WhatIfRouteState&) = default;
};

/// Before/after route of the vantage for one prefix.
struct WhatIfEntry {
  bgp::Prefix prefix;
  WhatIfRouteState before;
  WhatIfRouteState after;
  /// True when the full route changed (not just the summarized fields).
  bool changed = false;
};

/// Decoded kWhatIfFailure ok-body.
struct WhatIfResult {
  std::uint32_t vantage = 0;
  std::uint32_t edge_count = 0;
  std::vector<WhatIfEntry> entries;
  /// Total delta-wave process events spent answering (an effort measure:
  /// how much of the network the hypothetical failures actually touched).
  std::uint64_t wave_events = 0;
  std::uint32_t reachable_before = 0;
  std::uint32_t reachable_after = 0;
};

/// Decodes a kWhatIfFailure ok-body; nullopt on malformed bytes.
[[nodiscard]] std::optional<WhatIfResult> decode_what_if(
    std::span<const std::uint8_t> body);

// ------------------------------------------------------------------ engine --

/// Evaluates one request against one snapshot and returns the response
/// payload (status byte + body).  Never throws: request-payload defects
/// and unknown vantages become kError responses.  Pure — equal (kind,
/// request, snapshot artifacts) always produce equal bytes, which is the
/// serving half of the determinism contract.
[[nodiscard]] std::vector<std::uint8_t> answer(
    QueryKind kind, std::span<const std::uint8_t> request,
    const Snapshot& snapshot);

}  // namespace bgpolicy::serve
