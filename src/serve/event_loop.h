// Non-blocking epoll event loop serving the frame protocol on one thread.
//
// One `EventLoop` owns one epoll instance with level-triggered readiness
// and runs a per-connection read/write state machine:
//
//   * accept: the (shared, non-blocking) listen socket is drained until
//     EAGAIN; at `max_connections` the loop drops the listen fd from its
//     interest set and re-arms it when a slot frees — accept backpressure
//     instead of unbounded fd growth.
//   * read: socket bytes feed a FrameReader that buffers partial frames
//     across reads; each complete frame is handed to the handler and the
//     response is appended to the connection's write buffer.  A malformed
//     frame closes the connection (never the process).
//   * write: buffered responses are flushed until EAGAIN; EPOLLOUT is
//     armed only while bytes remain.  When a slow reader's unflushed
//     responses exceed `max_write_buffer_bytes`, the loop stops *reading*
//     from that connection until the buffer drains — per-connection
//     backpressure, so one slow client cannot balloon server memory.
//
// Several EventLoops (the daemon's --threads) share one listen fd, each
// on its own thread with its own epoll set and connections; a connection
// lives its whole life on the loop that accepted it, so no connection
// state is ever shared between threads.  `stop()` is the only cross-
// thread entry point (an eventfd wakeup).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>

#include "serve/frame.h"

namespace bgpolicy::serve {

/// RAII wrapper for a non-blocking loopback listen socket.  `port` 0
/// binds an ephemeral port; the resolved port is read back from the
/// socket.  Throws std::runtime_error on any socket/bind/listen failure.
class ListenSocket {
 public:
  explicit ListenSocket(std::uint16_t port, int backlog = 128);
  ~ListenSocket();

  ListenSocket(ListenSocket&& other) noexcept;
  ListenSocket& operator=(ListenSocket&& other) noexcept;
  ListenSocket(const ListenSocket&) = delete;
  ListenSocket& operator=(const ListenSocket&) = delete;

  [[nodiscard]] int fd() const { return fd_; }
  [[nodiscard]] std::uint16_t port() const { return port_; }

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

struct EventLoopConfig {
  /// Accept gate: above this many live connections the loop stops
  /// accepting until one closes.
  std::size_t max_connections = 1024;
  /// Per-connection write-buffer cap: above this the loop pauses reads on
  /// the connection until the client drains its responses.
  std::size_t max_write_buffer_bytes = 4u << 20;
  /// Bytes per read() call.
  std::size_t read_chunk_bytes = 64u << 10;
};

/// Monotonic counters, readable from other threads while the loop runs.
struct EventLoopStats {
  std::uint64_t accepted = 0;
  std::uint64_t closed = 0;
  std::uint64_t frames_in = 0;
  std::uint64_t frames_out = 0;
  /// Connections closed because their stream was malformed.
  std::uint64_t malformed_closes = 0;
  /// Times a connection's reads were paused for write backpressure.
  std::uint64_t read_pauses = 0;
  /// Times the accept gate closed at max_connections.
  std::uint64_t accept_pauses = 0;
};

class EventLoop {
 public:
  /// The request handler: one response frame per request frame.  Runs on
  /// the loop thread; a throwing handler closes the offending connection.
  using Handler = std::function<Frame(const Frame&)>;

  /// `listen_fd` is borrowed (shared across loops), not owned.  Throws
  /// std::runtime_error when epoll/eventfd setup fails.
  EventLoop(int listen_fd, Handler handler, EventLoopConfig config = {});
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Serves until stop(); closes every connection before returning.
  void run();
  /// Signals run() to exit (thread-safe, idempotent).
  void stop();

  [[nodiscard]] EventLoopStats stats() const;
  [[nodiscard]] std::size_t connection_count() const;

 private:
  struct Connection;

  void handle_accept();
  void handle_readable(Connection& connection);
  /// Flushes the write buffer and re-computes epoll interest (EPOLLOUT
  /// while bytes remain, EPOLLIN unless backpressured).  Returns false
  /// when the connection died mid-write.
  bool flush_writes(Connection& connection);
  void update_interest(Connection& connection);
  void close_connection(int fd);
  void set_accept_enabled(bool enabled);

  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  Handler handler_;
  EventLoopConfig config_;
  bool accept_enabled_ = true;
  bool stopping_ = false;
  std::unordered_map<int, std::unique_ptr<Connection>> connections_;

  // Counters are written by the loop thread only and read cross-thread
  // (bench progress, tests), hence the relaxed atomics.
  struct AtomicStats;
  std::unique_ptr<AtomicStats> stats_;
};

}  // namespace bgpolicy::serve
