#include "io/table_dump.h"

#include <algorithm>
#include <charconv>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace bgpolicy::io {

namespace {

using bgp::Origin;

std::string origin_token(Origin origin) {
  switch (origin) {
    case Origin::kIgp: return "igp";
    case Origin::kEgp: return "egp";
    case Origin::kIncomplete: return "incomplete";
  }
  return "igp";
}

Origin parse_origin(std::string_view token) {
  if (token == "igp") return Origin::kIgp;
  if (token == "egp") return Origin::kEgp;
  if (token == "incomplete") return Origin::kIncomplete;
  throw std::invalid_argument("table dump: bad origin token");
}

std::vector<std::string> split(std::string_view line) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (pos < line.size()) {
    while (pos < line.size() && line[pos] == ' ') ++pos;
    std::size_t end = pos;
    while (end < line.size() && line[end] != ' ') ++end;
    if (end > pos) out.emplace_back(line.substr(pos, end - pos));
    pos = end;
  }
  return out;
}

std::uint32_t parse_u32(const std::string& token) {
  std::uint32_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), value);
  if (ec != std::errc{} || ptr != token.data() + token.size()) {
    throw std::invalid_argument("table dump: bad number \"" + token + "\"");
  }
  return value;
}

}  // namespace

void dump_table(const bgp::BgpTable& table, std::ostream& out) {
  out << "bgp-table owner " << table.owner().value() << " prefixes "
      << table.prefix_count() << " routes " << table.route_count() << "\n";

  std::vector<bgp::Prefix> prefixes = table.prefixes();
  std::sort(prefixes.begin(), prefixes.end());
  for (const auto& prefix : prefixes) {
    std::vector<bgp::Route> routes(table.routes(prefix).begin(),
                                   table.routes(prefix).end());
    std::sort(routes.begin(), routes.end(),
              [](const bgp::Route& a, const bgp::Route& b) {
                return a.learned_from < b.learned_from;
              });
    for (const auto& route : routes) {
      out << "route " << prefix << " from " << route.learned_from.value()
          << " lp " << route.local_pref << " med " << route.med << " origin "
          << origin_token(route.origin) << " path";
      for (const auto hop : route.path.hops()) out << ' ' << hop.value();
      if (!route.communities.empty()) {
        out << " community";
        for (const auto c : route.communities) {
          out << ' ' << c.asn() << ':' << c.value();
        }
      }
      out << "\n";
    }
  }
}

std::string dump_table(const bgp::BgpTable& table) {
  std::ostringstream out;
  dump_table(table, out);
  return out.str();
}

bgp::BgpTable parse_table(std::string_view text) {
  std::optional<bgp::BgpTable> table;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t eol = std::min(text.find('\n', pos), text.size());
    const std::string_view line = text.substr(pos, eol - pos);
    pos = eol + 1;
    const auto tokens = split(line);
    if (tokens.empty()) {
      if (pos > text.size()) break;
      continue;
    }

    if (tokens[0] == "bgp-table") {
      if (tokens.size() < 3 || tokens[1] != "owner") {
        throw std::invalid_argument("table dump: bad header");
      }
      table.emplace(util::AsNumber(parse_u32(tokens[2])));
    } else if (tokens[0] == "route") {
      if (!table) throw std::invalid_argument("table dump: route before header");
      if (tokens.size() < 10) {
        throw std::invalid_argument("table dump: short route line");
      }
      bgp::Route route;
      route.prefix = bgp::Prefix::parse(tokens[1]);
      std::size_t i = 2;
      const auto expect = [&](const char* keyword) {
        if (i >= tokens.size() || tokens[i] != keyword) {
          throw std::invalid_argument("table dump: expected keyword");
        }
        ++i;
      };
      expect("from");
      route.learned_from = util::AsNumber(parse_u32(tokens[i++]));
      expect("lp");
      route.local_pref = parse_u32(tokens[i++]);
      expect("med");
      route.med = parse_u32(tokens[i++]);
      expect("origin");
      route.origin = parse_origin(tokens[i++]);
      expect("path");
      std::vector<util::AsNumber> hops;
      while (i < tokens.size() && tokens[i] != "community") {
        hops.emplace_back(parse_u32(tokens[i++]));
      }
      route.path = bgp::AsPath(std::move(hops));
      if (i < tokens.size() && tokens[i] == "community") {
        ++i;
        while (i < tokens.size()) {
          route.add_community(bgp::Community::parse(tokens[i++]));
        }
      }
      route.router_id = route.learned_from.value();
      table->add(std::move(route));
    } else {
      throw std::invalid_argument("table dump: unknown line kind");
    }
    if (pos > text.size()) break;
  }
  if (!table) throw std::invalid_argument("table dump: missing header");
  return std::move(*table);
}

}  // namespace bgpolicy::io
