#include "io/artifact_codec.h"

#include <algorithm>
#include <cstring>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <utility>

#include "core/artifact_store.h"
#include "io/binary_table.h"

namespace bgpolicy::io {

namespace {

constexpr char kMagic[4] = {'B', 'G', 'P', 'A'};

class Writer {
 public:
  explicit Writer(std::vector<std::uint8_t>& out) : out_(&out) {}

  template <typename T>
  void put(T value) {
    static_assert(std::is_trivially_copyable_v<T>);
    std::uint8_t raw[sizeof(T)];
    std::memcpy(raw, &value, sizeof(T));
    out_->insert(out_->end(), raw, raw + sizeof(T));
  }

  void put_string(std::string_view text) {
    put(static_cast<std::uint64_t>(text.size()));
    out_->insert(out_->end(),
                 reinterpret_cast<const std::uint8_t*>(text.data()),
                 reinterpret_cast<const std::uint8_t*>(text.data()) +
                     text.size());
  }

  void put_blob(std::span<const std::uint8_t> bytes) {
    put(static_cast<std::uint64_t>(bytes.size()));
    out_->insert(out_->end(), bytes.begin(), bytes.end());
  }

 private:
  std::vector<std::uint8_t>* out_;
};

class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  template <typename T>
  T get() {
    static_assert(std::is_trivially_copyable_v<T>);
    if (pos_ + sizeof(T) > bytes_.size()) {
      throw std::invalid_argument("artifact: truncated input");
    }
    T value;
    std::memcpy(&value, bytes_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return value;
  }

  /// A length prefix that still has to fit in the remaining input — the
  /// untrusted-count guard every container read goes through.
  [[nodiscard]] std::size_t get_count(std::size_t min_element_bytes = 1) {
    const std::uint64_t count = get<std::uint64_t>();
    if (count > (bytes_.size() - pos_) / std::max<std::size_t>(
                                             1, min_element_bytes)) {
      throw std::invalid_argument("artifact: implausible element count");
    }
    return static_cast<std::size_t>(count);
  }

  std::string get_string() {
    const std::size_t size = get_count();
    std::string text(reinterpret_cast<const char*>(bytes_.data() + pos_),
                     size);
    pos_ += size;
    return text;
  }

  std::span<const std::uint8_t> get_blob() {
    const std::size_t size = get_count();
    const std::span<const std::uint8_t> blob = bytes_.subspan(pos_, size);
    pos_ += size;
    return blob;
  }

  [[nodiscard]] bool exhausted() const { return pos_ == bytes_.size(); }

 private:
  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;
};

// ------------------------------------------------------------ primitives --

void put_as(Writer& w, util::AsNumber as) { w.put(as.value()); }
util::AsNumber get_as(Reader& r) {
  return util::AsNumber(r.get<std::uint32_t>());
}

void put_as_vector(Writer& w, std::span<const util::AsNumber> ases) {
  w.put(static_cast<std::uint64_t>(ases.size()));
  for (const auto as : ases) put_as(w, as);
}
std::vector<util::AsNumber> get_as_vector(Reader& r) {
  const std::size_t count = r.get_count(sizeof(std::uint32_t));
  std::vector<util::AsNumber> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) out.push_back(get_as(r));
  return out;
}

void put_prefix(Writer& w, const bgp::Prefix& prefix) {
  w.put(prefix.network());
  w.put(prefix.length());
}
bgp::Prefix get_prefix(Reader& r) {
  const std::uint32_t network = r.get<std::uint32_t>();
  const std::uint8_t length = r.get<std::uint8_t>();
  if (length > 32) throw std::invalid_argument("artifact: bad prefix length");
  return bgp::Prefix(network, length);
}

void put_rel(Writer& w, topo::RelKind kind) {
  w.put(static_cast<std::uint8_t>(kind));
}
topo::RelKind get_rel(Reader& r) {
  const std::uint8_t raw = r.get<std::uint8_t>();
  if (raw > 2) throw std::invalid_argument("artifact: bad relationship kind");
  return static_cast<topo::RelKind>(raw);
}

void put_table(Writer& w, const bgp::BgpTable& table) {
  w.put_blob(serialize_table(table));
}
bgp::BgpTable get_table(Reader& r) {
  // deserialize_table rejects its own corruption (magic, bounds, trailing
  // bytes) with the same invalid_argument contract.
  return deserialize_table(r.get_blob());
}

/// Key-sorted view over an unordered_map's entries (no copies): encoding
/// must be a pure function of content, not of hash-table iteration order.
template <typename Map>
std::vector<const typename Map::value_type*> sorted_entries(const Map& map) {
  std::vector<const typename Map::value_type*> entries;
  entries.reserve(map.size());
  for (const auto& entry : map) entries.push_back(&entry);
  std::sort(entries.begin(), entries.end(), [](const auto* a, const auto* b) {
    return a->first < b->first;
  });
  return entries;
}

// -------------------------------------------------------------- as graph --

void put_graph(Writer& w, const topo::AsGraph& graph) {
  put_as_vector(w, graph.ases());
  const auto edges = graph.edges();
  w.put(static_cast<std::uint64_t>(edges.size()));
  for (const topo::EdgeRecord& edge : edges) {
    put_as(w, edge.a);
    put_as(w, edge.b);
    put_rel(w, edge.b_is_to_a);
  }
}

topo::AsGraph get_graph(Reader& r) {
  topo::AsGraph graph;
  for (const auto as : get_as_vector(r)) graph.add_as(as);
  const std::size_t edges = r.get_count(2 * sizeof(std::uint32_t) + 1);
  for (std::size_t i = 0; i < edges; ++i) {
    const util::AsNumber a = get_as(r);
    const util::AsNumber b = get_as(r);
    const topo::RelKind kind = get_rel(r);
    // Replaying the creation-order records reproduces per-node neighbor
    // ordering exactly (topology/as_graph.h EdgeRecord).
    switch (kind) {
      case topo::RelKind::kCustomer: graph.add_provider_customer(a, b); break;
      case topo::RelKind::kPeer: graph.add_peer_peer(a, b); break;
      case topo::RelKind::kProvider:
        throw std::invalid_argument("artifact: bad edge record");
    }
  }
  return graph;
}

// ----------------------------------------------------------- ground truth --

void put_topology(Writer& w, const topo::Topology& topo) {
  put_graph(w, topo.graph);
  const auto tiers = sorted_entries(topo.tier);
  w.put(static_cast<std::uint64_t>(tiers.size()));
  for (const auto* entry : tiers) {
    put_as(w, entry->first);
    w.put(static_cast<std::uint8_t>(entry->second));
  }
  put_as_vector(w, topo.tier1);
  put_as_vector(w, topo.tier2);
  put_as_vector(w, topo.tier3);
  put_as_vector(w, topo.stubs);
}

topo::Topology get_topology(Reader& r) {
  topo::Topology topo;
  topo.graph = get_graph(r);
  const std::size_t tiers = r.get_count(sizeof(std::uint32_t) + 1);
  for (std::size_t i = 0; i < tiers; ++i) {
    const util::AsNumber as = get_as(r);
    const std::uint8_t raw = r.get<std::uint8_t>();
    if (raw < 1 || raw > 4) throw std::invalid_argument("artifact: bad tier");
    topo.tier.emplace(as, static_cast<topo::Tier>(raw));
  }
  topo.tier1 = get_as_vector(r);
  topo.tier2 = get_as_vector(r);
  topo.tier3 = get_as_vector(r);
  topo.stubs = get_as_vector(r);
  return topo;
}

void put_plan(Writer& w, const topo::PrefixPlan& plan) {
  w.put(static_cast<std::uint64_t>(plan.prefixes.size()));
  for (const topo::OriginatedPrefix& op : plan.prefixes) {
    put_prefix(w, op.prefix);
    put_as(w, op.origin);
    w.put(static_cast<std::uint8_t>(op.allocated_from.has_value()));
    if (op.allocated_from) put_as(w, *op.allocated_from);
  }
  const auto blocks = sorted_entries(plan.transit_block);
  w.put(static_cast<std::uint64_t>(blocks.size()));
  for (const auto* entry : blocks) {
    put_as(w, entry->first);
    put_prefix(w, entry->second);
  }
}

topo::PrefixPlan get_plan(Reader& r) {
  topo::PrefixPlan plan;
  const std::size_t prefixes = r.get_count(sizeof(std::uint32_t) * 2 + 2);
  plan.prefixes.reserve(prefixes);
  for (std::size_t i = 0; i < prefixes; ++i) {
    topo::OriginatedPrefix op;
    op.prefix = get_prefix(r);
    op.origin = get_as(r);
    if (r.get<std::uint8_t>() != 0) op.allocated_from = get_as(r);
    // by_origin indexes prefixes in appearance order — the same order
    // allocate_prefixes appends them (prefix_alloc.cc).
    plan.by_origin[op.origin].push_back(plan.prefixes.size());
    plan.prefixes.push_back(op);
  }
  const std::size_t blocks = r.get_count(sizeof(std::uint32_t) * 2 + 1);
  for (std::size_t i = 0; i < blocks; ++i) {
    const util::AsNumber as = get_as(r);
    plan.transit_block.emplace(as, get_prefix(r));
  }
  return plan;
}

void put_export_rule(Writer& w, const sim::ExportRule& rule) {
  w.put(static_cast<std::uint8_t>(rule.prefix.has_value()));
  if (rule.prefix) put_prefix(w, *rule.prefix);
  w.put(static_cast<std::uint8_t>(rule.origin.has_value()));
  if (rule.origin) put_as(w, *rule.origin);
  w.put(static_cast<std::uint8_t>(rule.action));
  put_as(w, rule.target);
  w.put(rule.prepend_times);
}

sim::ExportRule get_export_rule(Reader& r) {
  sim::ExportRule rule;
  if (r.get<std::uint8_t>() != 0) rule.prefix = get_prefix(r);
  if (r.get<std::uint8_t>() != 0) rule.origin = get_as(r);
  const std::uint8_t action = r.get<std::uint8_t>();
  if (action > static_cast<std::uint8_t>(sim::ExportAction::kPrepend)) {
    throw std::invalid_argument("artifact: bad export action");
  }
  rule.action = static_cast<sim::ExportAction>(action);
  rule.target = get_as(r);
  rule.prepend_times = r.get<std::uint8_t>();
  return rule;
}

void put_policy(Writer& w, const sim::AsPolicy& policy) {
  w.put(policy.import.customer_pref);
  w.put(policy.import.peer_pref);
  w.put(policy.import.provider_pref);
  const auto neighbor_overrides =
      sorted_entries(policy.import.neighbor_override);
  w.put(static_cast<std::uint64_t>(neighbor_overrides.size()));
  for (const auto* entry : neighbor_overrides) {
    put_as(w, entry->first);
    w.put(entry->second);
  }
  const auto prefix_overrides = sorted_entries(policy.import.prefix_override);
  w.put(static_cast<std::uint64_t>(prefix_overrides.size()));
  for (const auto* entry : prefix_overrides) {
    put_prefix(w, entry->first);
    w.put(entry->second);
  }

  const auto per_neighbor = sorted_entries(policy.export_.per_neighbor);
  w.put(static_cast<std::uint64_t>(per_neighbor.size()));
  for (const auto* entry : per_neighbor) {
    put_as(w, entry->first);
    w.put(static_cast<std::uint64_t>(entry->second.size()));
    for (const sim::ExportRule& rule : entry->second) put_export_rule(w, rule);
  }
  w.put(static_cast<std::uint64_t>(policy.export_.any_neighbor.size()));
  for (const sim::ExportRule& rule : policy.export_.any_neighbor) {
    put_export_rule(w, rule);
  }

  w.put(static_cast<std::uint8_t>(policy.community.enabled));
  w.put(static_cast<std::uint8_t>(policy.community.published));
  w.put(policy.community.peer_base);
  w.put(policy.community.provider_base);
  w.put(policy.community.customer_base);
  w.put(policy.community.values_per_class);

  put_as_vector(w, policy.no_export_targets);
  w.put(static_cast<std::uint64_t>(policy.conditional.size()));
  for (const sim::ConditionalAdvertisement& cond : policy.conditional) {
    put_prefix(w, cond.prefix);
    put_as(w, cond.advertise_to);
    put_as(w, cond.watch_provider);
  }
}

sim::AsPolicy get_policy(Reader& r) {
  sim::AsPolicy policy;
  policy.import.customer_pref = r.get<std::uint32_t>();
  policy.import.peer_pref = r.get<std::uint32_t>();
  policy.import.provider_pref = r.get<std::uint32_t>();
  const std::size_t neighbor_overrides = r.get_count(8);
  for (std::size_t i = 0; i < neighbor_overrides; ++i) {
    const util::AsNumber as = get_as(r);
    policy.import.neighbor_override.emplace(as, r.get<std::uint32_t>());
  }
  const std::size_t prefix_overrides = r.get_count(9);
  for (std::size_t i = 0; i < prefix_overrides; ++i) {
    const bgp::Prefix prefix = get_prefix(r);
    policy.import.prefix_override.emplace(prefix, r.get<std::uint32_t>());
  }

  const std::size_t per_neighbor = r.get_count(12);
  for (std::size_t i = 0; i < per_neighbor; ++i) {
    const util::AsNumber as = get_as(r);
    auto& rules = policy.export_.per_neighbor[as];
    const std::size_t rule_count = r.get_count(8);
    rules.reserve(rule_count);
    for (std::size_t j = 0; j < rule_count; ++j) {
      rules.push_back(get_export_rule(r));
    }
  }
  const std::size_t any_rules = r.get_count(8);
  policy.export_.any_neighbor.reserve(any_rules);
  for (std::size_t i = 0; i < any_rules; ++i) {
    policy.export_.any_neighbor.push_back(get_export_rule(r));
  }

  policy.community.enabled = r.get<std::uint8_t>() != 0;
  policy.community.published = r.get<std::uint8_t>() != 0;
  policy.community.peer_base = r.get<std::uint16_t>();
  policy.community.provider_base = r.get<std::uint16_t>();
  policy.community.customer_base = r.get<std::uint16_t>();
  policy.community.values_per_class = r.get<std::uint16_t>();

  policy.no_export_targets = get_as_vector(r);
  const std::size_t conditionals = r.get_count(13);
  policy.conditional.reserve(conditionals);
  for (std::size_t i = 0; i < conditionals; ++i) {
    sim::ConditionalAdvertisement cond;
    cond.prefix = get_prefix(r);
    cond.advertise_to = get_as(r);
    cond.watch_provider = get_as(r);
    policy.conditional.push_back(cond);
  }
  return policy;
}

void put_policy_truth(Writer& w, const sim::GroundTruth& truth) {
  w.put(static_cast<std::uint64_t>(truth.origin_units.size()));
  for (const sim::SelectiveUnit& unit : truth.origin_units) {
    put_as(w, unit.origin);
    put_prefix(w, unit.prefix);
    put_as(w, unit.provider);
    w.put(static_cast<std::uint8_t>(unit.withheld));
    w.put(static_cast<std::uint8_t>(unit.via_community));
  }
  w.put(static_cast<std::uint64_t>(truth.prepend_units.size()));
  for (const sim::PrependUnit& unit : truth.prepend_units) {
    put_as(w, unit.origin);
    put_as(w, unit.provider);
    w.put(unit.times);
  }
  w.put(static_cast<std::uint64_t>(truth.intermediate_units.size()));
  for (const sim::IntermediateSelective& unit : truth.intermediate_units) {
    put_as(w, unit.intermediate);
    put_as(w, unit.customer);
    put_as(w, unit.provider);
  }
  w.put(static_cast<std::uint64_t>(truth.split_specifics.size()));
  for (const bgp::Prefix& prefix : truth.split_specifics) {
    put_prefix(w, prefix);
  }
  const auto aggregated = sorted_entries(truth.aggregated_by);
  w.put(static_cast<std::uint64_t>(aggregated.size()));
  for (const auto* entry : aggregated) {
    put_prefix(w, entry->first);
    put_as(w, entry->second);
  }
  w.put(static_cast<std::uint64_t>(truth.peer_withholders.size()));
  for (const auto& [pair, fraction] : truth.peer_withholders) {
    put_as(w, pair.first);
    put_as(w, pair.second);
    w.put(fraction);
  }
}

sim::GroundTruth get_policy_truth(Reader& r) {
  sim::GroundTruth truth;
  const std::size_t origin_units = r.get_count(15);
  truth.origin_units.reserve(origin_units);
  for (std::size_t i = 0; i < origin_units; ++i) {
    sim::SelectiveUnit unit;
    unit.origin = get_as(r);
    unit.prefix = get_prefix(r);
    unit.provider = get_as(r);
    unit.withheld = r.get<std::uint8_t>() != 0;
    unit.via_community = r.get<std::uint8_t>() != 0;
    truth.origin_units.push_back(unit);
  }
  const std::size_t prepend_units = r.get_count(9);
  truth.prepend_units.reserve(prepend_units);
  for (std::size_t i = 0; i < prepend_units; ++i) {
    sim::PrependUnit unit;
    unit.origin = get_as(r);
    unit.provider = get_as(r);
    unit.times = r.get<std::uint8_t>();
    truth.prepend_units.push_back(unit);
  }
  const std::size_t intermediates = r.get_count(12);
  truth.intermediate_units.reserve(intermediates);
  for (std::size_t i = 0; i < intermediates; ++i) {
    sim::IntermediateSelective unit;
    unit.intermediate = get_as(r);
    unit.customer = get_as(r);
    unit.provider = get_as(r);
    truth.intermediate_units.push_back(unit);
  }
  const std::size_t splits = r.get_count(5);
  truth.split_specifics.reserve(splits);
  for (std::size_t i = 0; i < splits; ++i) {
    truth.split_specifics.push_back(get_prefix(r));
  }
  const std::size_t aggregated = r.get_count(9);
  for (std::size_t i = 0; i < aggregated; ++i) {
    const bgp::Prefix prefix = get_prefix(r);
    truth.aggregated_by.emplace(prefix, get_as(r));
  }
  const std::size_t withholders = r.get_count(16);
  truth.peer_withholders.reserve(withholders);
  for (std::size_t i = 0; i < withholders; ++i) {
    const util::AsNumber peer = get_as(r);
    const util::AsNumber target = get_as(r);
    truth.peer_withholders.push_back({{peer, target}, r.get<double>()});
  }
  return truth;
}

void put_ground_truth(Writer& w, const core::GroundTruth& truth) {
  put_topology(w, truth.topo);
  put_plan(w, truth.plan);

  const auto policies = sorted_entries(truth.gen.policies.by_as);
  w.put(static_cast<std::uint64_t>(policies.size()));
  for (const auto* entry : policies) {
    put_as(w, entry->first);
    put_policy(w, entry->second);
  }
  w.put(static_cast<std::uint64_t>(truth.gen.split_extras.size()));
  for (const topo::OriginatedPrefix& op : truth.gen.split_extras) {
    put_prefix(w, op.prefix);
    put_as(w, op.origin);
    w.put(static_cast<std::uint8_t>(op.allocated_from.has_value()));
    if (op.allocated_from) put_as(w, *op.allocated_from);
  }
  put_policy_truth(w, truth.gen.truth);

  w.put(static_cast<std::uint64_t>(truth.originations.size()));
  for (const sim::Origination& origination : truth.originations) {
    put_prefix(w, origination.prefix);
    put_as(w, origination.origin);
  }
}

core::GroundTruth get_ground_truth(Reader& r) {
  core::GroundTruth truth;
  truth.topo = get_topology(r);
  truth.plan = get_plan(r);

  const std::size_t policies = r.get_count(4);
  for (std::size_t i = 0; i < policies; ++i) {
    const util::AsNumber as = get_as(r);
    truth.gen.policies.by_as.emplace(as, get_policy(r));
  }
  const std::size_t extras = r.get_count(10);
  truth.gen.split_extras.reserve(extras);
  for (std::size_t i = 0; i < extras; ++i) {
    topo::OriginatedPrefix op;
    op.prefix = get_prefix(r);
    op.origin = get_as(r);
    if (r.get<std::uint8_t>() != 0) op.allocated_from = get_as(r);
    truth.gen.split_extras.push_back(op);
  }
  truth.gen.truth = get_policy_truth(r);

  const std::size_t originations = r.get_count(9);
  truth.originations.reserve(originations);
  for (std::size_t i = 0; i < originations; ++i) {
    sim::Origination origination;
    origination.prefix = get_prefix(r);
    origination.origin = get_as(r);
    truth.originations.push_back(origination);
  }
  return truth;
}

// ------------------------------------------------------------ sim artifact --

void put_sim_result(Writer& w, const sim::SimResult& sim) {
  put_table(w, sim.collector);
  const auto looking_glass = sorted_entries(sim.looking_glass);
  w.put(static_cast<std::uint64_t>(looking_glass.size()));
  for (const auto* entry : looking_glass) {
    put_as(w, entry->first);
    put_table(w, entry->second);
  }
  const auto best_only = sorted_entries(sim.best_only);
  w.put(static_cast<std::uint64_t>(best_only.size()));
  for (const auto* entry : best_only) {
    put_as(w, entry->first);
    put_table(w, entry->second);
  }
  w.put(static_cast<std::uint64_t>(sim.origination_count));
  w.put(static_cast<std::uint64_t>(sim.unconverged_prefixes));
  w.put(static_cast<std::uint64_t>(sim.process_events));
}

sim::SimResult get_sim_result(Reader& r) {
  sim::SimResult sim;
  sim.collector = get_table(r);
  const std::size_t looking_glass = r.get_count(12);
  for (std::size_t i = 0; i < looking_glass; ++i) {
    const util::AsNumber as = get_as(r);
    sim.looking_glass.emplace(as, get_table(r));
  }
  const std::size_t best_only = r.get_count(12);
  for (std::size_t i = 0; i < best_only; ++i) {
    const util::AsNumber as = get_as(r);
    sim.best_only.emplace(as, get_table(r));
  }
  sim.origination_count = static_cast<std::size_t>(r.get<std::uint64_t>());
  sim.unconverged_prefixes =
      static_cast<std::size_t>(r.get<std::uint64_t>());
  sim.process_events = static_cast<std::size_t>(r.get<std::uint64_t>());
  return sim;
}

void put_sim_artifact(Writer& w, const core::SimArtifact& artifact) {
  put_as(w, artifact.vantage.collector_as);
  put_as_vector(w, artifact.vantage.collector_peers);
  put_as_vector(w, artifact.vantage.looking_glass);
  put_as_vector(w, artifact.vantage.best_only);
  put_sim_result(w, artifact.sim);
}

core::SimArtifact get_sim_artifact(Reader& r) {
  core::SimArtifact artifact;
  artifact.vantage.collector_as = get_as(r);
  artifact.vantage.collector_peers = get_as_vector(r);
  artifact.vantage.looking_glass = get_as_vector(r);
  artifact.vantage.best_only = get_as_vector(r);
  artifact.sim = get_sim_result(r);
  return artifact;
}

// -------------------------------------------------------------- sim chunk --

void put_sim_chunk(Writer& w, const core::SimChunk& chunk) {
  w.put(chunk.begin);
  w.put(chunk.end);
  w.put(chunk.total);
  put_sim_result(w, chunk.partial);
}

core::SimChunk get_sim_chunk(Reader& r) {
  core::SimChunk chunk;
  chunk.begin = r.get<std::uint64_t>();
  chunk.end = r.get<std::uint64_t>();
  chunk.total = r.get<std::uint64_t>();
  if (chunk.begin > chunk.end || chunk.end > chunk.total) {
    throw std::invalid_argument("artifact: bad sim chunk range");
  }
  chunk.partial = get_sim_result(r);
  return chunk;
}

// ------------------------------------------------------------ observations --

void put_path(Writer& w, std::span<const util::AsNumber> path) {
  w.put(static_cast<std::uint16_t>(path.size()));
  for (const auto as : path) put_as(w, as);
}

std::vector<util::AsNumber> get_path(Reader& r) {
  const std::uint16_t length = r.get<std::uint16_t>();
  std::vector<util::AsNumber> path;
  path.reserve(length);
  for (std::uint16_t i = 0; i < length; ++i) path.push_back(get_as(r));
  return path;
}

void put_observations(Writer& w, const core::Observations& observations) {
  put_as_vector(w, observations.lg_order);
  w.put_string(observations.irr_text);

  w.put(static_cast<std::uint64_t>(observations.irr_objects.size()));
  for (const rpsl::AutNum& aut_num : observations.irr_objects) {
    put_as(w, aut_num.as);
    w.put_string(aut_num.as_name);
    w.put(static_cast<std::uint64_t>(aut_num.imports.size()));
    for (const rpsl::ImportLine& line : aut_num.imports) {
      put_as(w, line.from);
      w.put(static_cast<std::uint8_t>(line.pref.has_value()));
      if (line.pref) w.put(*line.pref);
      w.put_string(line.accept);
    }
    w.put(static_cast<std::uint64_t>(aut_num.exports.size()));
    for (const rpsl::ExportLine& line : aut_num.exports) {
      put_as(w, line.to);
      w.put_string(line.announce);
    }
    w.put(static_cast<std::uint64_t>(aut_num.community_remarks.size()));
    for (const rpsl::CommunityRemark& remark : aut_num.community_remarks) {
      put_rel(w, remark.kind);
      w.put(remark.value_lo);
      w.put(remark.value_hi);
    }
    w.put(aut_num.changed_date);
  }

  // The cleaned Gao path multiset in ingest order; add_path replays it into
  // an identical inference state (gao_inference.h).
  const auto gao_paths = observations.observed_paths.paths();
  w.put(static_cast<std::uint64_t>(gao_paths.size()));
  for (const auto& path : gao_paths) put_path(w, path);

  // The path index's (prefix, path) observations in insertion order;
  // add_path replays them into an identical index (path_index.h).
  w.put(static_cast<std::uint64_t>(observations.paths.path_count()));
  for (std::size_t i = 0; i < observations.paths.path_count(); ++i) {
    put_prefix(w, observations.paths.prefix_at(i));
    put_path(w, observations.paths.path_at(i));
  }
}

core::Observations get_observations(Reader& r) {
  core::Observations observations;
  observations.lg_order = get_as_vector(r);
  observations.irr_text = r.get_string();

  const std::size_t aut_nums = r.get_count(4);
  observations.irr_objects.reserve(aut_nums);
  for (std::size_t i = 0; i < aut_nums; ++i) {
    rpsl::AutNum aut_num;
    aut_num.as = get_as(r);
    aut_num.as_name = r.get_string();
    const std::size_t imports = r.get_count(13);
    aut_num.imports.reserve(imports);
    for (std::size_t j = 0; j < imports; ++j) {
      rpsl::ImportLine line;
      line.from = get_as(r);
      if (r.get<std::uint8_t>() != 0) line.pref = r.get<std::uint32_t>();
      line.accept = r.get_string();
      aut_num.imports.push_back(std::move(line));
    }
    const std::size_t exports = r.get_count(12);
    aut_num.exports.reserve(exports);
    for (std::size_t j = 0; j < exports; ++j) {
      rpsl::ExportLine line;
      line.to = get_as(r);
      line.announce = r.get_string();
      aut_num.exports.push_back(std::move(line));
    }
    const std::size_t remarks = r.get_count(5);
    aut_num.community_remarks.reserve(remarks);
    for (std::size_t j = 0; j < remarks; ++j) {
      rpsl::CommunityRemark remark;
      remark.kind = get_rel(r);
      remark.value_lo = r.get<std::uint16_t>();
      remark.value_hi = r.get<std::uint16_t>();
      aut_num.community_remarks.push_back(remark);
    }
    aut_num.changed_date = r.get<std::uint32_t>();
    observations.irr_objects.push_back(std::move(aut_num));
  }

  const std::size_t gao_paths = r.get_count(2);
  for (std::size_t i = 0; i < gao_paths; ++i) {
    observations.observed_paths.add_path(get_path(r));
  }
  const std::size_t index_entries = r.get_count(7);
  for (std::size_t i = 0; i < index_entries; ++i) {
    const bgp::Prefix prefix = get_prefix(r);
    observations.paths.add_path(prefix, get_path(r));
  }
  return observations;
}

// -------------------------------------------------------------- inference --

void put_inference(Writer& w, const core::InferenceProducts& inference) {
  struct Edge {
    util::AsNumber lo;
    util::AsNumber hi;
    asrel::EdgeType type;
  };
  std::vector<Edge> edges;
  edges.reserve(inference.inferred.edge_count());
  inference.inferred.for_each(
      [&](util::AsNumber lo, util::AsNumber hi, asrel::EdgeType type) {
        edges.push_back({lo, hi, type});
      });
  std::sort(edges.begin(), edges.end(), [](const Edge& a, const Edge& b) {
    return a.lo != b.lo ? a.lo < b.lo : a.hi < b.hi;
  });
  w.put(static_cast<std::uint64_t>(edges.size()));
  for (const Edge& edge : edges) {
    put_as(w, edge.lo);
    put_as(w, edge.hi);
    w.put(static_cast<std::uint8_t>(edge.type));
  }

  const auto levels = sorted_entries(inference.tiers.level);
  w.put(static_cast<std::uint64_t>(levels.size()));
  for (const auto* entry : levels) {
    put_as(w, entry->first);
    w.put(static_cast<std::int32_t>(entry->second));
  }
  put_as_vector(w, inference.tiers.tier1);
}

core::InferenceProducts get_inference(Reader& r) {
  core::InferenceProducts inference;
  const std::size_t edges = r.get_count(9);
  for (std::size_t i = 0; i < edges; ++i) {
    const util::AsNumber lo = get_as(r);
    const util::AsNumber hi = get_as(r);
    const std::uint8_t type = r.get<std::uint8_t>();
    if (type > static_cast<std::uint8_t>(asrel::EdgeType::kSibling)) {
      throw std::invalid_argument("artifact: bad edge type");
    }
    inference.inferred.set(lo, hi, static_cast<asrel::EdgeType>(type));
  }
  // The annotated graph is a pure function of the classification; rebuild
  // instead of storing a second copy.
  inference.inferred_graph = inference.inferred.to_graph();

  const std::size_t levels = r.get_count(8);
  for (std::size_t i = 0; i < levels; ++i) {
    const util::AsNumber as = get_as(r);
    inference.tiers.level.emplace(as, r.get<std::int32_t>());
  }
  inference.tiers.tier1 = get_as_vector(r);
  return inference;
}

// --------------------------------------------------------- analysis suite --

void put_analysis_suite(Writer& w, const core::AnalysisSuite& suite) {
  w.put(static_cast<std::uint64_t>(suite.vantages.size()));
  for (const core::VantageAnalysis& v : suite.vantages) {
    put_as(w, v.vantage);
    w.put(static_cast<std::uint8_t>(v.looking_glass));

    put_as(w, v.sa.provider);
    w.put(static_cast<std::uint64_t>(v.sa.customer_prefixes));
    w.put(static_cast<std::uint64_t>(v.sa.sa_count));
    w.put(v.sa.percent_sa);
    w.put(static_cast<std::uint64_t>(v.sa.sa_prefixes.size()));
    for (const core::SaPrefix& sa : v.sa.sa_prefixes) {
      put_prefix(w, sa.prefix);
      put_as(w, sa.origin);
      put_as(w, sa.next_hop);
      put_rel(w, sa.next_hop_rel);
    }

    put_as(w, v.homing.provider);
    w.put(static_cast<std::uint64_t>(v.homing.multihomed_ases));
    w.put(static_cast<std::uint64_t>(v.homing.singlehomed_ases));
    w.put(v.homing.percent_multihomed);
    w.put(v.homing.percent_singlehomed);

    put_as(w, v.causes.provider);
    w.put(static_cast<std::uint64_t>(v.causes.sa_total));
    w.put(static_cast<std::uint64_t>(v.causes.splitting));
    w.put(static_cast<std::uint64_t>(v.causes.aggregating));
    w.put(static_cast<std::uint64_t>(v.causes.identified));
    w.put(static_cast<std::uint64_t>(v.causes.announce_to_direct));
    w.put(static_cast<std::uint64_t>(v.causes.withheld_from_direct));
    w.put(v.causes.percent_identified);
    w.put(v.causes.percent_announce);
    w.put(v.causes.percent_withheld);

    w.put(static_cast<std::uint8_t>(v.import_typicality.has_value()));
    if (v.import_typicality) {
      put_as(w, v.import_typicality->vantage);
      w.put(static_cast<std::uint64_t>(
          v.import_typicality->comparable_prefixes));
      w.put(static_cast<std::uint64_t>(v.import_typicality->typical_prefixes));
      w.put(v.import_typicality->percent_typical);
      const auto class_values =
          sorted_entries(v.import_typicality->class_values);
      w.put(static_cast<std::uint64_t>(class_values.size()));
      for (const auto* entry : class_values) {
        put_rel(w, entry->first);
        w.put(static_cast<std::uint64_t>(entry->second.size()));
        for (const std::uint32_t value : entry->second) w.put(value);
      }
    }

    w.put(static_cast<std::uint8_t>(v.sa_verification.has_value()));
    if (v.sa_verification) {
      put_as(w, v.sa_verification->provider);
      w.put(static_cast<std::uint64_t>(v.sa_verification->sa_total));
      w.put(static_cast<std::uint64_t>(v.sa_verification->verified));
      w.put(v.sa_verification->percent_verified);
      w.put(static_cast<std::uint64_t>(v.sa_verification->step1_failures));
      w.put(static_cast<std::uint64_t>(v.sa_verification->step2_failures));
    }
  }
}

core::AnalysisSuite get_analysis_suite(Reader& r) {
  core::AnalysisSuite suite;
  const std::size_t vantages = r.get_count(64);
  suite.vantages.reserve(vantages);
  for (std::size_t i = 0; i < vantages; ++i) {
    core::VantageAnalysis v;
    v.vantage = get_as(r);
    v.looking_glass = r.get<std::uint8_t>() != 0;

    v.sa.provider = get_as(r);
    v.sa.customer_prefixes = static_cast<std::size_t>(r.get<std::uint64_t>());
    v.sa.sa_count = static_cast<std::size_t>(r.get<std::uint64_t>());
    v.sa.percent_sa = r.get<double>();
    const std::size_t sa_prefixes = r.get_count(14);
    v.sa.sa_prefixes.reserve(sa_prefixes);
    for (std::size_t j = 0; j < sa_prefixes; ++j) {
      core::SaPrefix sa;
      sa.prefix = get_prefix(r);
      sa.origin = get_as(r);
      sa.next_hop = get_as(r);
      sa.next_hop_rel = get_rel(r);
      v.sa.sa_prefixes.push_back(sa);
    }

    v.homing.provider = get_as(r);
    v.homing.multihomed_ases = static_cast<std::size_t>(r.get<std::uint64_t>());
    v.homing.singlehomed_ases =
        static_cast<std::size_t>(r.get<std::uint64_t>());
    v.homing.percent_multihomed = r.get<double>();
    v.homing.percent_singlehomed = r.get<double>();

    v.causes.provider = get_as(r);
    v.causes.sa_total = static_cast<std::size_t>(r.get<std::uint64_t>());
    v.causes.splitting = static_cast<std::size_t>(r.get<std::uint64_t>());
    v.causes.aggregating = static_cast<std::size_t>(r.get<std::uint64_t>());
    v.causes.identified = static_cast<std::size_t>(r.get<std::uint64_t>());
    v.causes.announce_to_direct =
        static_cast<std::size_t>(r.get<std::uint64_t>());
    v.causes.withheld_from_direct =
        static_cast<std::size_t>(r.get<std::uint64_t>());
    v.causes.percent_identified = r.get<double>();
    v.causes.percent_announce = r.get<double>();
    v.causes.percent_withheld = r.get<double>();

    if (r.get<std::uint8_t>() != 0) {
      core::ImportTypicality typicality;
      typicality.vantage = get_as(r);
      typicality.comparable_prefixes =
          static_cast<std::size_t>(r.get<std::uint64_t>());
      typicality.typical_prefixes =
          static_cast<std::size_t>(r.get<std::uint64_t>());
      typicality.percent_typical = r.get<double>();
      const std::size_t classes = r.get_count(9);
      for (std::size_t j = 0; j < classes; ++j) {
        const topo::RelKind kind = get_rel(r);
        const std::size_t count = r.get_count(4);
        std::vector<std::uint32_t> values;
        values.reserve(count);
        for (std::size_t k = 0; k < count; ++k) {
          values.push_back(r.get<std::uint32_t>());
        }
        typicality.class_values.emplace(kind, std::move(values));
      }
      v.import_typicality = std::move(typicality);
    }

    if (r.get<std::uint8_t>() != 0) {
      core::SaVerification verification;
      verification.provider = get_as(r);
      verification.sa_total = static_cast<std::size_t>(r.get<std::uint64_t>());
      verification.verified = static_cast<std::size_t>(r.get<std::uint64_t>());
      verification.percent_verified = r.get<double>();
      verification.step1_failures =
          static_cast<std::size_t>(r.get<std::uint64_t>());
      verification.step2_failures =
          static_cast<std::size_t>(r.get<std::uint64_t>());
      v.sa_verification = verification;
    }
    suite.vantages.push_back(std::move(v));
  }
  return suite;
}

// ------------------------------------------------------------- framing ----

constexpr std::uint64_t kChecksumSeed = 0xcbf29ce484222325ULL;

std::vector<std::uint8_t> frame(ArtifactKind kind,
                                std::vector<std::uint8_t>&& payload) {
  std::vector<std::uint8_t> out;
  out.reserve(payload.size() + 24);
  for (const char c : kMagic) out.push_back(static_cast<std::uint8_t>(c));
  Writer w(out);
  w.put(kArtifactCodecVersion);
  w.put(static_cast<std::uint16_t>(kind));
  w.put(static_cast<std::uint64_t>(payload.size()));
  w.put(core::fnv1a64(payload, kChecksumSeed));
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

/// Validates the header and returns the payload span.
std::span<const std::uint8_t> unframe(ArtifactKind kind,
                                      std::span<const std::uint8_t> bytes) {
  Reader r(bytes);
  char magic[4];
  for (char& c : magic) c = static_cast<char>(r.get<std::uint8_t>());
  if (std::memcmp(magic, kMagic, 4) != 0) {
    throw std::invalid_argument("artifact: bad magic");
  }
  if (r.get<std::uint16_t>() != kArtifactCodecVersion) {
    throw std::invalid_argument("artifact: unsupported codec version");
  }
  const std::uint16_t stored_kind = r.get<std::uint16_t>();
  if (stored_kind != static_cast<std::uint16_t>(kind)) {
    throw std::invalid_argument("artifact: kind mismatch");
  }
  const std::uint64_t payload_size = r.get<std::uint64_t>();
  const std::uint64_t checksum = r.get<std::uint64_t>();
  constexpr std::size_t kHeaderSize = 4 + 2 + 2 + 8 + 8;
  if (payload_size != bytes.size() - kHeaderSize) {
    throw std::invalid_argument("artifact: truncated or oversized payload");
  }
  const std::span<const std::uint8_t> payload = bytes.subspan(kHeaderSize);
  if (core::fnv1a64(payload, kChecksumSeed) != checksum) {
    throw std::invalid_argument("artifact: checksum mismatch");
  }
  return payload;
}

/// Runs a payload decoder with the trailing-bytes check and translates any
/// structural failure (bounds, invariant violations inside replayed
/// builders) into the decoder contract's invalid_argument.
template <typename Fn>
auto decode_payload(ArtifactKind kind, std::span<const std::uint8_t> bytes,
                    Fn&& fn) {
  try {
    Reader r(unframe(kind, bytes));
    auto value = fn(r);
    if (!r.exhausted()) {
      throw std::invalid_argument("artifact: trailing bytes");
    }
    return value;
  } catch (const std::invalid_argument&) {
    throw;
  } catch (const std::exception& error) {
    throw std::invalid_argument(std::string("artifact: corrupt payload (") +
                                error.what() + ")");
  }
}

}  // namespace

const char* to_string(ArtifactKind kind) {
  switch (kind) {
    case ArtifactKind::kGroundTruth: return "ground_truth";
    case ArtifactKind::kSimArtifact: return "sim_artifact";
    case ArtifactKind::kObservations: return "observations";
    case ArtifactKind::kInferenceProducts: return "inference_products";
    case ArtifactKind::kAnalysisSuite: return "analysis_suite";
    case ArtifactKind::kSimChunk: return "sim_chunk";
  }
  return "?";
}

std::vector<std::uint8_t> encode(const core::GroundTruth& truth) {
  std::vector<std::uint8_t> payload;
  Writer w(payload);
  put_ground_truth(w, truth);
  return frame(ArtifactKind::kGroundTruth, std::move(payload));
}

std::vector<std::uint8_t> encode(const core::SimArtifact& sim) {
  std::vector<std::uint8_t> payload;
  Writer w(payload);
  put_sim_artifact(w, sim);
  return frame(ArtifactKind::kSimArtifact, std::move(payload));
}

std::vector<std::uint8_t> encode(const core::Observations& observations) {
  std::vector<std::uint8_t> payload;
  Writer w(payload);
  put_observations(w, observations);
  return frame(ArtifactKind::kObservations, std::move(payload));
}

std::vector<std::uint8_t> encode(const core::InferenceProducts& inference) {
  std::vector<std::uint8_t> payload;
  Writer w(payload);
  put_inference(w, inference);
  return frame(ArtifactKind::kInferenceProducts, std::move(payload));
}

std::vector<std::uint8_t> encode(const core::AnalysisSuite& suite) {
  std::vector<std::uint8_t> payload;
  Writer w(payload);
  put_analysis_suite(w, suite);
  return frame(ArtifactKind::kAnalysisSuite, std::move(payload));
}

core::GroundTruth decode_ground_truth(std::span<const std::uint8_t> bytes) {
  return decode_payload(ArtifactKind::kGroundTruth, bytes,
                        [](Reader& r) { return get_ground_truth(r); });
}

core::SimArtifact decode_sim_artifact(std::span<const std::uint8_t> bytes) {
  return decode_payload(ArtifactKind::kSimArtifact, bytes,
                        [](Reader& r) { return get_sim_artifact(r); });
}

core::Observations decode_observations(std::span<const std::uint8_t> bytes) {
  return decode_payload(ArtifactKind::kObservations, bytes,
                        [](Reader& r) { return get_observations(r); });
}

core::InferenceProducts decode_inference(std::span<const std::uint8_t> bytes) {
  return decode_payload(ArtifactKind::kInferenceProducts, bytes,
                        [](Reader& r) { return get_inference(r); });
}

core::AnalysisSuite decode_analysis_suite(
    std::span<const std::uint8_t> bytes) {
  return decode_payload(ArtifactKind::kAnalysisSuite, bytes,
                        [](Reader& r) { return get_analysis_suite(r); });
}

std::vector<std::uint8_t> encode(const core::SimChunk& chunk) {
  std::vector<std::uint8_t> payload;
  Writer w(payload);
  put_sim_chunk(w, chunk);
  return frame(ArtifactKind::kSimChunk, std::move(payload));
}

core::SimChunk decode_sim_chunk(std::span<const std::uint8_t> bytes) {
  return decode_payload(ArtifactKind::kSimChunk, bytes,
                        [](Reader& r) { return get_sim_chunk(r); });
}

std::optional<ArtifactHeader> peek_artifact_header(
    std::span<const std::uint8_t> bytes) {
  if (bytes.size() < kArtifactHeaderBytes) return std::nullopt;
  if (std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    return std::nullopt;
  }
  ArtifactHeader header;
  std::memcpy(&header.version, bytes.data() + 4, sizeof(header.version));
  if (header.version != kArtifactCodecVersion) return std::nullopt;
  std::memcpy(&header.kind, bytes.data() + 6, sizeof(header.kind));
  std::memcpy(&header.payload_bytes, bytes.data() + 8,
              sizeof(header.payload_bytes));
  return header;
}

}  // namespace bgpolicy::io
