// Compact binary serialization of BGP tables (MRT-inspired, simplified).
//
// Layout (all little-endian):
//   magic "BGPT" | u16 version | u32 owner | u64 route_count
//   per route:
//     u32 network | u8 length | u32 learned_from | u32 local_pref
//     u32 med | u8 origin | u16 path_len | u32 hop... | u16 community_count
//     u32 community_raw...
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "bgp/table.h"

namespace bgpolicy::io {

[[nodiscard]] std::vector<std::uint8_t> serialize_table(
    const bgp::BgpTable& table);

/// Throws std::invalid_argument on truncated or corrupt input.
[[nodiscard]] bgp::BgpTable deserialize_table(
    std::span<const std::uint8_t> bytes);

}  // namespace bgpolicy::io
