#include "io/binary_table.h"

#include <algorithm>
#include <cstring>
#include <stdexcept>

namespace bgpolicy::io {

namespace {

constexpr std::uint16_t kVersion = 1;
constexpr char kMagic[4] = {'B', 'G', 'P', 'T'};

class Writer {
 public:
  explicit Writer(std::vector<std::uint8_t>& out) : out_(&out) {}

  template <typename T>
  void put(T value) {
    static_assert(std::is_trivially_copyable_v<T>);
    std::uint8_t raw[sizeof(T)];
    std::memcpy(raw, &value, sizeof(T));
    out_->insert(out_->end(), raw, raw + sizeof(T));
  }

 private:
  std::vector<std::uint8_t>* out_;
};

class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  template <typename T>
  T get() {
    static_assert(std::is_trivially_copyable_v<T>);
    if (pos_ + sizeof(T) > bytes_.size()) {
      throw std::invalid_argument("binary table: truncated input");
    }
    T value;
    std::memcpy(&value, bytes_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return value;
  }

  [[nodiscard]] bool exhausted() const { return pos_ == bytes_.size(); }

 private:
  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;
};

}  // namespace

std::vector<std::uint8_t> serialize_table(const bgp::BgpTable& table) {
  std::vector<std::uint8_t> out;
  Writer w(out);
  // Byte-wise append: the obvious range insert trips GCC 12's
  // -Wstringop-overflow (false positive) under -Werror.
  for (const char c : kMagic) out.push_back(static_cast<std::uint8_t>(c));
  w.put(kVersion);
  w.put(table.owner().value());
  w.put(static_cast<std::uint64_t>(table.route_count()));

  table.for_each([&](const bgp::Prefix& prefix,
                     std::span<const bgp::Route> routes) {
    for (const bgp::Route& route : routes) {
      w.put(prefix.network());
      w.put(prefix.length());
      w.put(route.learned_from.value());
      w.put(route.local_pref);
      w.put(route.med);
      w.put(static_cast<std::uint8_t>(route.origin));
      w.put(static_cast<std::uint16_t>(route.path.length()));
      for (const auto hop : route.path.hops()) w.put(hop.value());
      w.put(static_cast<std::uint16_t>(route.communities.size()));
      for (const auto c : route.communities) w.put(c.raw());
    }
  });
  return out;
}

bgp::BgpTable deserialize_table(std::span<const std::uint8_t> bytes) {
  Reader r(bytes);
  char magic[4];
  for (char& ch : magic) ch = static_cast<char>(r.get<std::uint8_t>());
  if (std::memcmp(magic, kMagic, 4) != 0) {
    throw std::invalid_argument("binary table: bad magic");
  }
  if (r.get<std::uint16_t>() != kVersion) {
    throw std::invalid_argument("binary table: unsupported version");
  }
  bgp::BgpTable table{util::AsNumber(r.get<std::uint32_t>())};
  const std::uint64_t route_count = r.get<std::uint64_t>();

  std::vector<bgp::Route> routes;
  // route_count is untrusted input: cap the reservation by what the
  // remaining bytes could possibly encode (a route is ≥ 22 bytes), so a
  // corrupted header fails with invalid_argument below, not bad_alloc.
  routes.reserve(static_cast<std::size_t>(
      std::min<std::uint64_t>(route_count, bytes.size() / 22 + 1)));
  for (std::uint64_t i = 0; i < route_count; ++i) {
    bgp::Route route;
    const std::uint32_t network = r.get<std::uint32_t>();
    const std::uint8_t length = r.get<std::uint8_t>();
    if (length > 32) throw std::invalid_argument("binary table: bad length");
    route.prefix = bgp::Prefix(network, length);
    route.learned_from = util::AsNumber(r.get<std::uint32_t>());
    route.local_pref = r.get<std::uint32_t>();
    route.med = r.get<std::uint32_t>();
    const std::uint8_t origin = r.get<std::uint8_t>();
    if (origin > 2) throw std::invalid_argument("binary table: bad origin");
    route.origin = static_cast<bgp::Origin>(origin);
    const std::uint16_t path_len = r.get<std::uint16_t>();
    std::vector<util::AsNumber> hops;
    hops.reserve(path_len);
    for (std::uint16_t h = 0; h < path_len; ++h) {
      hops.emplace_back(r.get<std::uint32_t>());
    }
    route.path = bgp::AsPath(std::move(hops));
    const std::uint16_t community_count = r.get<std::uint16_t>();
    for (std::uint16_t c = 0; c < community_count; ++c) {
      route.add_community(bgp::Community(r.get<std::uint32_t>()));
    }
    route.router_id = route.learned_from.value();
    routes.push_back(std::move(route));
  }
  if (!r.exhausted()) {
    throw std::invalid_argument("binary table: trailing bytes");
  }
  table.add_batch(std::move(routes));
  return table;
}

}  // namespace bgpolicy::io
