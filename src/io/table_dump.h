// Text serialization of BGP tables ("show ip bgp"-flavored, but line
// structured so it round-trips).  Lets examples persist vantage tables and
// re-run analyses offline, the way the paper worked from downloaded dumps.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>

#include "bgp/table.h"

namespace bgpolicy::io {

/// Writes `table` as text: a header line, then one "route ..." line per
/// route, sorted by (prefix, neighbor) for stable diffs.
void dump_table(const bgp::BgpTable& table, std::ostream& out);
[[nodiscard]] std::string dump_table(const bgp::BgpTable& table);

/// Parses a dump back.  Throws std::invalid_argument on malformed input.
[[nodiscard]] bgp::BgpTable parse_table(std::string_view text);

}  // namespace bgpolicy::io
