// Binary (de)serialization for the staged experiment artifacts
// (core/experiment.h): GroundTruth, SimArtifact, Observations,
// InferenceProducts, and AnalysisSuite — the on-disk representation behind
// core::ArtifactStore and cross-process sweep resume.
//
// Every encoded artifact starts with a versioned header:
//
//   magic "BGPA" | u16 codec version | u16 artifact kind
//   | u64 payload length | u64 payload FNV-1a checksum | payload...
//
// so a decoder can reject truncated files, foreign files, future codec
// versions, and bit corruption *before* interpreting a single payload
// byte.  Decoders throw std::invalid_argument on any such defect; the
// staged cache treats every decode failure as a cache miss and recomputes
// — a damaged store can cost time, never correctness.
//
// Vantage tables reuse the io::serialize_table route encoding
// (binary_table.h), each embedded as a length-prefixed blob.  Everything
// keyed by an unordered container is serialized in sorted key order, so
// encoding is a pure function of artifact *content*: equal artifacts
// produce equal bytes, which is what lets the staged cache chain on
// upstream artifact digests (core/artifact_store.h).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "core/analysis_suite.h"
#include "core/experiment.h"

namespace bgpolicy::io {

inline constexpr std::uint16_t kArtifactCodecVersion = 1;

enum class ArtifactKind : std::uint16_t {
  kGroundTruth = 1,
  kSimArtifact = 2,
  kObservations = 3,
  kInferenceProducts = 4,
  kAnalysisSuite = 5,
  /// One Simulate chunk (core::SimChunk): the per-prefix-shard slice the
  /// staged task graph persists individually so a killed run resumes
  /// mid-Simulate.  Same framing as every other kind; a full SimArtifact
  /// entry supersedes its chunks once the merged stage persists.
  kSimChunk = 6,
};

[[nodiscard]] const char* to_string(ArtifactKind kind);

/// The versioned header leading every encoded artifact, parsed without
/// touching the payload.
struct ArtifactHeader {
  std::uint16_t version = 0;
  /// Raw kind tag; may name a kind this build does not know.
  std::uint16_t kind = 0;
  std::uint64_t payload_bytes = 0;
};

/// Artifact header size in bytes (magic + version + kind + length +
/// checksum) — the prefix peek_artifact_header needs.
inline constexpr std::size_t kArtifactHeaderBytes = 24;

/// Non-throwing header peek for store census tools (tools/store_top):
/// validates magic and version over just the header prefix of `bytes` and
/// returns the kind tag and payload length.  The checksum is NOT verified
/// (that requires the payload; decoders do it).  nullopt on truncated or
/// foreign bytes.
[[nodiscard]] std::optional<ArtifactHeader> peek_artifact_header(
    std::span<const std::uint8_t> bytes);

[[nodiscard]] std::vector<std::uint8_t> encode(const core::GroundTruth& truth);
[[nodiscard]] std::vector<std::uint8_t> encode(const core::SimArtifact& sim);
[[nodiscard]] std::vector<std::uint8_t> encode(
    const core::Observations& observations);
[[nodiscard]] std::vector<std::uint8_t> encode(
    const core::InferenceProducts& inference);
[[nodiscard]] std::vector<std::uint8_t> encode(const core::AnalysisSuite& suite);
[[nodiscard]] std::vector<std::uint8_t> encode(const core::SimChunk& chunk);

// Decoders throw std::invalid_argument on truncated, corrupted,
// wrong-kind, or version-mismatched input.
[[nodiscard]] core::GroundTruth decode_ground_truth(
    std::span<const std::uint8_t> bytes);
[[nodiscard]] core::SimArtifact decode_sim_artifact(
    std::span<const std::uint8_t> bytes);
[[nodiscard]] core::Observations decode_observations(
    std::span<const std::uint8_t> bytes);
[[nodiscard]] core::InferenceProducts decode_inference(
    std::span<const std::uint8_t> bytes);
[[nodiscard]] core::AnalysisSuite decode_analysis_suite(
    std::span<const std::uint8_t> bytes);
[[nodiscard]] core::SimChunk decode_sim_chunk(
    std::span<const std::uint8_t> bytes);

}  // namespace bgpolicy::io
