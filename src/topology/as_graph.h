// The annotated AS graph of Section 2.1: nodes are ASes, edges are either
// provider-to-customer or peer-to-peer.  This is the ground-truth substrate
// the simulator routes over and the reference the inference algorithms are
// scored against.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "util/ids.h"

namespace bgpolicy::topo {

using util::AsNumber;

/// What a neighbor is *to me*: my customer, my peer, or my provider.
enum class RelKind : std::uint8_t { kCustomer, kPeer, kProvider };

[[nodiscard]] std::string to_string(RelKind kind);

/// Inverts the perspective: if b is a's customer, then a is b's provider.
[[nodiscard]] constexpr RelKind invert(RelKind kind) {
  switch (kind) {
    case RelKind::kCustomer: return RelKind::kProvider;
    case RelKind::kProvider: return RelKind::kCustomer;
    case RelKind::kPeer: return RelKind::kPeer;
  }
  return RelKind::kPeer;  // unreachable
}

struct Neighbor {
  AsNumber as;
  RelKind kind;  ///< what `as` is to the node being queried
  friend bool operator==(const Neighbor&, const Neighbor&) = default;
};

/// One edge in creation order: `b_is_to_a` is kCustomer for a
/// provider(a)->customer(b) edge and kPeer for a peer-peer edge — exactly
/// the argument shapes of add_provider_customer(a, b) / add_peer_peer(a, b),
/// so replaying the records reconstructs a graph with identical per-node
/// neighbor ordering (which DFS-order-sensitive consumers and the
/// propagation engine's event order depend on).  The serialization hook for
/// io/artifact_codec.
struct EdgeRecord {
  AsNumber a;
  AsNumber b;
  RelKind b_is_to_a;
  friend bool operator==(const EdgeRecord&, const EdgeRecord&) = default;
};

class AsGraph {
 public:
  /// Adds an AS; idempotent.
  void add_as(AsNumber as);

  /// Adds a provider-to-customer edge.  Throws if either endpoint is
  /// missing, if the edge already exists, or if provider == customer.
  void add_provider_customer(AsNumber provider, AsNumber customer);

  /// Adds a peer-to-peer edge (same preconditions).
  void add_peer_peer(AsNumber a, AsNumber b);

  [[nodiscard]] bool contains(AsNumber as) const;
  [[nodiscard]] std::size_t as_count() const { return nodes_.size(); }
  [[nodiscard]] std::size_t edge_count() const { return edge_count_; }

  /// All ASes in insertion order.
  [[nodiscard]] std::span<const AsNumber> ases() const { return order_; }

  /// All edges in creation order (see EdgeRecord).
  [[nodiscard]] std::span<const EdgeRecord> edges() const { return edges_; }

  /// Neighbors of `as` with their relationship from `as`'s perspective.
  [[nodiscard]] std::span<const Neighbor> neighbors(AsNumber as) const;

  [[nodiscard]] std::size_t degree(AsNumber as) const;

  /// What `other` is to `as`; nullopt when not adjacent.
  [[nodiscard]] std::optional<RelKind> relationship(AsNumber as,
                                                    AsNumber other) const;

  [[nodiscard]] std::vector<AsNumber> customers(AsNumber as) const;
  [[nodiscard]] std::vector<AsNumber> providers(AsNumber as) const;
  [[nodiscard]] std::vector<AsNumber> peers(AsNumber as) const;

  /// True when a customer path (provider -> ... -> descendant following only
  /// provider-to-customer edges) exists from `provider` down to `as`.
  /// This is Phase 2 of the paper's Fig. 4 algorithm.
  [[nodiscard]] bool in_customer_cone(AsNumber provider, AsNumber as) const;

  /// The full customer cone of `provider` (all direct or indirect
  /// customers), excluding the provider itself.
  [[nodiscard]] std::vector<AsNumber> customer_cone(AsNumber provider) const;

  /// One customer path provider -> ... -> target (inclusive), or empty when
  /// none exists.  DFS order is deterministic (insertion order).
  [[nodiscard]] std::vector<AsNumber> find_customer_path(
      AsNumber provider, AsNumber target) const;

  /// True when the AS-level path (leftmost = closest to the observer)
  /// is valley-free under this graph's annotations: zero or more
  /// customer-to-provider hops, at most one peer-peer hop, then zero or
  /// more provider-to-customer hops, reading the path from the origin
  /// (rightmost) toward the observer.  Paths with unannotated adjacencies
  /// return false.
  [[nodiscard]] bool is_valley_free(std::span<const AsNumber> path) const;

 private:
  struct Node {
    std::vector<Neighbor> neighbors;
    std::unordered_map<AsNumber, RelKind> by_as;
  };

  [[nodiscard]] const Node* node(AsNumber as) const;
  Node& node_or_throw(AsNumber as);
  void add_edge(AsNumber a, AsNumber b, RelKind b_is_to_a);

  std::unordered_map<AsNumber, Node> nodes_;
  std::vector<AsNumber> order_;
  std::vector<EdgeRecord> edges_;
  std::size_t edge_count_ = 0;
};

}  // namespace bgpolicy::topo
