#include "topology/topology_gen.h"

#include <algorithm>
#include <array>
#include <cmath>

#include "util/ensure.h"

namespace bgpolicy::topo {

namespace {

using util::Rng;

// AS numbers from the paper's tables, used as labels for generated nodes so
// bench output rows read like the originals.
// Ordered so the paper's three focus Tier-1s receive the largest customer
// bases (the popularity skew favors earlier entries), mirroring the real
// degree ranking (AT&T's 1330 was the largest in Table 1).
constexpr std::array<std::uint32_t, 10> kTier1Names = {
    7018, 1, 3549, 701, 1239, 3561, 2914, 6453, 209, 6461};

constexpr std::array<std::uint32_t, 20> kTier2Names = {
    5511, 7474, 6762, 1299, 3320, 3300, 3292, 3215, 5400,  1740,
    4000, 6830, 3344, 5503, 8434, 2518, 13127, 6863, 4004, 12322};

constexpr std::array<std::uint32_t, 41> kTier3Names = {
    577,   6539,  6667,  2578,  513,   559,   12359, 12859, 8262,  12635,
    15498, 12306, 8341,  8650,  5615,  12390, 5607,  1140,  5427,  12781,
    6873,  8365,  1901,  852,   15290, 8527,  3313,  9191,  12731, 5466,
    15435, 5597,  3216,  12868, 2118,  5594,  1103,  13129, 21392, 9013,
    6538};

constexpr std::array<std::uint32_t, 10> kStubNames = {
    376, 6280, 10910, 11647, 14743, 15087, 19024, 19916, 13768, 8736};

// Assigns AS numbers for a role: named prefix first, then synthetic numbers
// from `synthetic_base` upward, skipping collisions with names in use.
std::vector<AsNumber> assign_numbers(std::span<const std::uint32_t> names,
                                     std::size_t count,
                                     std::uint32_t synthetic_base,
                                     std::unordered_map<AsNumber, Tier>& taken,
                                     Tier tier) {
  std::vector<AsNumber> out;
  out.reserve(count);
  for (std::size_t i = 0; i < names.size() && out.size() < count; ++i) {
    const AsNumber as{names[i]};
    if (taken.contains(as)) continue;
    taken.emplace(as, tier);
    out.push_back(as);
  }
  std::uint32_t next = synthetic_base;
  while (out.size() < count) {
    const AsNumber as{next++};
    if (taken.contains(as)) continue;
    taken.emplace(as, tier);
    out.push_back(as);
  }
  return out;
}

// Draws a provider index with Zipf-ish popularity skew: low indices (the
// "big" providers) are proportionally more likely, producing heavy-tailed
// provider degrees.
std::size_t skewed_pick(Rng& rng, std::size_t n, double skew) {
  if (n == 1) return 0;
  const double u = rng.uniform01();
  const double x = std::pow(u, 1.0 + skew);  // concentrates mass near 0
  auto idx = static_cast<std::size_t>(x * static_cast<double>(n));
  return std::min(idx, n - 1);
}

// Picks `k` distinct providers from `pool` with popularity skew.
std::vector<AsNumber> pick_providers(Rng& rng, std::span<const AsNumber> pool,
                                     std::size_t k, double skew) {
  k = std::min(k, pool.size());
  std::vector<AsNumber> out;
  out.reserve(k);
  std::size_t guard = 0;
  while (out.size() < k && guard < 1000) {
    ++guard;
    const AsNumber candidate = pool[skewed_pick(rng, pool.size(), skew)];
    if (std::find(out.begin(), out.end(), candidate) == out.end()) {
      out.push_back(candidate);
    }
  }
  return out;
}

// Poisson-ish small count with the given mean (geometric approximation is
// fine for link-count draws; the exact distribution is not load-bearing).
std::size_t small_count(Rng& rng, double mean) {
  std::size_t count = 0;
  const double p = mean / (mean + 1.0);
  while (rng.chance(p) && count < 32) ++count;
  return count;
}

}  // namespace

std::string to_string(Tier tier) {
  switch (tier) {
    case Tier::kTier1: return "tier-1";
    case Tier::kTier2: return "tier-2";
    case Tier::kTier3: return "tier-3";
    case Tier::kStub: return "stub";
  }
  return "?";
}

Topology generate_topology(const GeneratorParams& params) {
  util::ensure(params.tier1_count >= 2, "topology: need >= 2 Tier-1 ASs");
  util::ensure(params.tier2_count >= 1, "topology: need >= 1 Tier-2 AS");
  util::ensure(params.tier3_count >= 1, "topology: need >= 1 Tier-3 AS");
  util::ensure(params.max_stub_providers >= 2,
               "topology: max_stub_providers must allow multihoming");

  Rng rng(params.seed);
  Rng rng_t2 = rng.fork();
  Rng rng_t3 = rng.fork();
  Rng rng_stub = rng.fork();

  Topology topo;
  topo.tier1 = assign_numbers(kTier1Names, params.tier1_count, 100,
                              topo.tier, Tier::kTier1);
  topo.tier2 = assign_numbers(kTier2Names, params.tier2_count, 2000,
                              topo.tier, Tier::kTier2);
  topo.tier3 = assign_numbers(kTier3Names, params.tier3_count, 16000,
                              topo.tier, Tier::kTier3);
  topo.stubs = assign_numbers(kStubNames, params.stub_count, 20000,
                              topo.tier, Tier::kStub);

  AsGraph& g = topo.graph;
  for (const auto& group : {topo.tier1, topo.tier2, topo.tier3, topo.stubs}) {
    for (const AsNumber as : group) g.add_as(as);
  }

  // Tier-1: full peering clique (default-free core).
  for (std::size_t i = 0; i < topo.tier1.size(); ++i) {
    for (std::size_t j = i + 1; j < topo.tier1.size(); ++j) {
      g.add_peer_peer(topo.tier1[i], topo.tier1[j]);
    }
  }

  const double skew = params.provider_popularity_skew;

  // Weighted 1/2/3 provider multiplicity: single-homing dominates, which
  // keeps Tier-1 customer cones from being multiply covered (the paper-era
  // structure that makes selective announcement effective).
  const auto provider_multiplicity = [](Rng& rng) -> std::size_t {
    const double roll = rng.uniform01();
    return roll < 0.50 ? 1 : (roll < 0.85 ? 2 : 3);
  };

  // Tier-2: Tier-1 providers plus a sparse Tier-2 peer mesh.
  for (const AsNumber as : topo.tier2) {
    const std::size_t provider_count = provider_multiplicity(rng_t2);
    for (const AsNumber p :
         pick_providers(rng_t2, topo.tier1, provider_count, skew)) {
      g.add_provider_customer(p, as);
    }
  }
  for (const AsNumber as : topo.tier2) {
    const std::size_t want = small_count(rng_t2, params.tier2_peer_mean / 2.0);
    for (std::size_t k = 0; k < want; ++k) {
      const AsNumber other = topo.tier2[rng_t2.index(topo.tier2.size())];
      if (other == as || g.relationship(as, other)) continue;
      g.add_peer_peer(as, other);
    }
  }

  // Tier-3: providers from Tier-2 (occasionally a Tier-1 directly), plus a
  // very sparse Tier-3 peer mesh.
  for (const AsNumber as : topo.tier3) {
    const std::size_t provider_count = provider_multiplicity(rng_t3);
    for (const AsNumber p :
         pick_providers(rng_t3, topo.tier2, provider_count, skew)) {
      g.add_provider_customer(p, as);
    }
    if (rng_t3.chance(params.tier3_direct_tier1_prob)) {
      const AsNumber p =
          topo.tier1[skewed_pick(rng_t3, topo.tier1.size(), skew)];
      if (!g.relationship(as, p)) g.add_provider_customer(p, as);
    }
  }
  for (const AsNumber as : topo.tier3) {
    const std::size_t want = small_count(rng_t3, params.tier3_peer_mean / 2.0);
    for (std::size_t k = 0; k < want; ++k) {
      const AsNumber other = topo.tier3[rng_t3.index(topo.tier3.size())];
      if (other == as || g.relationship(as, other)) continue;
      g.add_peer_peer(as, other);
    }
  }

  // Stubs: single- or multihomed into tiers 1-3 (mostly 2-3), rare
  // stub-stub peering.
  for (const AsNumber as : topo.stubs) {
    const bool multihomed = rng_stub.chance(params.stub_multihome_prob);
    const std::size_t provider_count =
        multihomed ? 2 + rng_stub.index(params.max_stub_providers - 1) : 1;
    std::size_t attached = 0;
    std::size_t guard = 0;
    while (attached < provider_count && guard < 100) {
      ++guard;
      const double roll = rng_stub.uniform01();
      AsNumber p{};
      if (roll < params.stub_tier1_frac) {
        p = topo.tier1[skewed_pick(rng_stub, topo.tier1.size(), skew)];
      } else if (roll < params.stub_tier1_frac + params.stub_tier2_frac) {
        p = topo.tier2[skewed_pick(rng_stub, topo.tier2.size(), skew)];
      } else {
        p = topo.tier3[skewed_pick(rng_stub, topo.tier3.size(), skew)];
      }
      if (g.relationship(as, p)) continue;
      g.add_provider_customer(p, as);
      ++attached;
    }
  }
  for (const AsNumber as : topo.stubs) {
    if (!rng_stub.chance(params.stub_peer_prob)) continue;
    const AsNumber other = topo.stubs[rng_stub.index(topo.stubs.size())];
    if (other == as || g.relationship(as, other)) continue;
    g.add_peer_peer(as, other);
  }

  return topo;
}

}  // namespace bgpolicy::topo
