#include "topology/prefix_alloc.h"

#include <algorithm>

#include "util/ensure.h"

namespace bgpolicy::topo {

namespace {

using bgp::Prefix;
using util::Rng;

// Sequential aligned allocator over the 32-bit address space, starting at
// 8.0.0.0 (everything below is left unused, like the real bogon ranges).
class AddressPool {
 public:
  explicit AddressPool(std::uint32_t start) : cursor_(start) {}

  Prefix allocate(std::uint8_t length) {
    util::ensure(length >= 1 && length <= 32, "AddressPool: bad length");
    const std::uint32_t size = length == 0 ? 0 : (1U << (32 - length));
    // Align the cursor up to the block size.
    const std::uint32_t aligned = (cursor_ + size - 1) & ~(size - 1);
    util::ensure_state(aligned + (size - 1) >= aligned,
                       "AddressPool: address space exhausted");
    cursor_ = aligned + size;
    return Prefix(aligned, length);
  }

 private:
  std::uint32_t cursor_;
};

// Tracks sub-allocation inside one transit block.
struct BlockCursor {
  Prefix block;
  std::uint32_t next_index = 0;  // next free /24-unit inside the block
};

}  // namespace

PrefixPlan allocate_prefixes(const Topology& topo,
                             const PrefixAllocParams& params) {
  Rng rng(params.seed);
  PrefixPlan plan;
  AddressPool transit_pool(0x08000000);   // 8.0.0.0
  AddressPool independent_pool(0xC0000000);  // 192.0.0.0 for PI space

  std::unordered_map<AsNumber, BlockCursor> cursors;

  const auto add = [&](Prefix prefix, AsNumber origin,
                       std::optional<AsNumber> allocated_from) {
    plan.by_origin[origin].push_back(plan.prefixes.size());
    plan.prefixes.push_back({prefix, origin, allocated_from});
  };

  // Transit ASes: one top-level block each (size by tier) plus a few
  // more-specifics they originate themselves.
  const auto allocate_transit = [&](std::span<const AsNumber> group,
                                    std::uint8_t block_len) {
    for (const AsNumber as : group) {
      const Prefix block = transit_pool.allocate(block_len);
      plan.transit_block.emplace(as, block);
      cursors.emplace(as, BlockCursor{block, 0});
      add(block, as, std::nullopt);
      const std::uint64_t extra =
          rng.pareto(1.3, params.max_transit_extra) - 1;
      for (std::uint64_t i = 0; i < extra; ++i) {
        // Originate a /20 more-specific out of the AS's own block.
        const std::uint64_t slots = block.subnet_count(20);
        if (slots == 0) break;
        add(block.subnet(20, static_cast<std::uint32_t>(rng.uniform(0, slots - 1))),
            as, std::nullopt);
      }
    }
  };
  allocate_transit(topo.tier1, 12);
  allocate_transit(topo.tier2, 14);
  allocate_transit(topo.tier3, 16);

  // Stubs: heavy-tailed prefix counts; each prefix is either carved from a
  // provider block (provider-assigned, aggregatable) or independent.
  for (const AsNumber as : topo.stubs) {
    const auto count = rng.pareto(params.count_alpha, params.max_stub_prefixes);
    const auto providers = topo.graph.providers(as);
    for (std::uint64_t i = 0; i < count; ++i) {
      // Prefix length: mostly /24, some /23 and /22 (the shorter ones give
      // the splitting behavior something to split).
      const double roll = rng.uniform01();
      const std::uint8_t length = roll < 0.70 ? 24 : (roll < 0.90 ? 23 : 22);
      const bool provider_space =
          !providers.empty() && rng.chance(params.provider_space_prob);
      if (provider_space) {
        const AsNumber provider = providers[rng.index(providers.size())];
        auto cursor_it = cursors.find(provider);
        if (cursor_it != cursors.end()) {
          BlockCursor& cursor = cursor_it->second;
          const std::uint64_t units = std::uint64_t{1} << (24 - length);
          const std::uint64_t total_units = cursor.block.subnet_count(24);
          // Reserve the top half of each provider block for customers; keep
          // sub-blocks aligned to their own size so /22s and /23s stay
          // canonical.
          const std::uint64_t base = total_units / 2;
          const std::uint64_t aligned =
              (cursor.next_index + units - 1) & ~(units - 1);
          if (base + aligned + units <= total_units) {
            const auto unit_index = static_cast<std::uint32_t>(base + aligned);
            cursor.next_index = static_cast<std::uint32_t>(aligned + units);
            const Prefix sub = cursor.block.subnet(24, unit_index);
            add(Prefix(sub.network(), length), as, provider);
            continue;
          }
        }
      }
      add(independent_pool.allocate(length), as, std::nullopt);
    }
  }

  return plan;
}

}  // namespace bgpolicy::topo
