// A flat, dense-id view of an AsGraph for hot-path consumers.
//
// AsGraph stores adjacency as per-node hash maps keyed by AsNumber — the
// right shape for incremental construction and sparse queries, but every
// `relationship`/`neighbors`/`degree` probe in the propagation fixpoint
// pays a hash.  GraphView is built once per scenario from a finished graph
// and flattens everything the engine touches:
//
//   * every AS gets a dense id in [0, size()) assigned in insertion order
//     (`AsGraph::ases()` order), so per-AS state becomes a plain vector
//     indexed by id;
//   * adjacency is one CSR (compressed sparse row) layout: `offsets()[id]`
//     .. `offsets()[id + 1]` index flat arc arrays holding each neighbor's
//     dense id and relationship, preserving AsGraph's per-node neighbor
//     order exactly (the propagation event order depends on it);
//   * `arc_rel(slot)` is what the *neighbor* is to the node whose row the
//     slot belongs to — the same perspective as `Neighbor::kind` — and
//     `invert()` gives the reverse perspective without a second lookup.
//
// The view holds no reference to the source graph and stays valid (and
// immutable) regardless of what happens to it afterwards.
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <unordered_map>
#include <vector>

#include "topology/as_graph.h"

namespace bgpolicy::topo {

class GraphView {
 public:
  using Id = std::uint32_t;
  static constexpr Id kInvalidId = std::numeric_limits<Id>::max();

  explicit GraphView(const AsGraph& graph);

  [[nodiscard]] std::size_t size() const { return as_of_.size(); }

  /// Dense id of `as`, or kInvalidId when the AS is not in the graph.
  [[nodiscard]] Id id_of(AsNumber as) const {
    const auto it = id_of_.find(as);
    return it == id_of_.end() ? kInvalidId : it->second;
  }

  [[nodiscard]] AsNumber as_of(Id id) const { return as_of_[id]; }

  /// CSR row bounds for `id`: arcs live in [arcs_begin(id), arcs_end(id)).
  [[nodiscard]] std::uint32_t arcs_begin(Id id) const { return offsets_[id]; }
  [[nodiscard]] std::uint32_t arcs_end(Id id) const { return offsets_[id + 1]; }
  [[nodiscard]] std::size_t degree(Id id) const {
    return offsets_[id + 1] - offsets_[id];
  }

  /// Dense id of the neighbor stored at CSR `slot`.
  [[nodiscard]] Id arc_to(std::uint32_t slot) const { return arc_to_[slot]; }
  /// What that neighbor is to the row's node (Neighbor::kind perspective).
  [[nodiscard]] RelKind arc_rel(std::uint32_t slot) const {
    return arc_rel_[slot];
  }

  [[nodiscard]] std::span<const std::uint32_t> offsets() const {
    return offsets_;
  }

 private:
  std::vector<AsNumber> as_of_;
  std::unordered_map<AsNumber, Id> id_of_;
  std::vector<std::uint32_t> offsets_;  // size() + 1 entries
  std::vector<Id> arc_to_;
  std::vector<RelKind> arc_rel_;
};

}  // namespace bgpolicy::topo
