#include "topology/as_graph.h"

#include <stdexcept>

#include "util/ensure.h"

namespace bgpolicy::topo {

std::string to_string(RelKind kind) {
  switch (kind) {
    case RelKind::kCustomer: return "customer";
    case RelKind::kPeer: return "peer";
    case RelKind::kProvider: return "provider";
  }
  return "?";
}

void AsGraph::add_as(AsNumber as) {
  const auto [it, inserted] = nodes_.try_emplace(as);
  if (inserted) order_.push_back(as);
}

const AsGraph::Node* AsGraph::node(AsNumber as) const {
  const auto it = nodes_.find(as);
  return it == nodes_.end() ? nullptr : &it->second;
}

AsGraph::Node& AsGraph::node_or_throw(AsNumber as) {
  const auto it = nodes_.find(as);
  util::ensure(it != nodes_.end(), "AsGraph: unknown AS");
  return it->second;
}

void AsGraph::add_edge(AsNumber a, AsNumber b, RelKind b_is_to_a) {
  util::ensure(a != b, "AsGraph: self edge");
  Node& node_a = node_or_throw(a);
  Node& node_b = node_or_throw(b);
  util::ensure(!node_a.by_as.contains(b), "AsGraph: duplicate edge");
  node_a.neighbors.push_back({b, b_is_to_a});
  node_a.by_as.emplace(b, b_is_to_a);
  node_b.neighbors.push_back({a, invert(b_is_to_a)});
  node_b.by_as.emplace(a, invert(b_is_to_a));
  edges_.push_back({a, b, b_is_to_a});
  ++edge_count_;
}

void AsGraph::add_provider_customer(AsNumber provider, AsNumber customer) {
  add_edge(provider, customer, RelKind::kCustomer);
}

void AsGraph::add_peer_peer(AsNumber a, AsNumber b) {
  add_edge(a, b, RelKind::kPeer);
}

bool AsGraph::contains(AsNumber as) const { return nodes_.contains(as); }

std::span<const Neighbor> AsGraph::neighbors(AsNumber as) const {
  const Node* n = node(as);
  if (n == nullptr) return {};
  return n->neighbors;
}

std::size_t AsGraph::degree(AsNumber as) const {
  return neighbors(as).size();
}

std::optional<RelKind> AsGraph::relationship(AsNumber as,
                                             AsNumber other) const {
  const Node* n = node(as);
  if (n == nullptr) return std::nullopt;
  const auto it = n->by_as.find(other);
  if (it == n->by_as.end()) return std::nullopt;
  return it->second;
}

namespace {

std::vector<AsNumber> filter_neighbors(std::span<const Neighbor> neighbors,
                                       RelKind kind) {
  std::vector<AsNumber> out;
  for (const auto& n : neighbors) {
    if (n.kind == kind) out.push_back(n.as);
  }
  return out;
}

}  // namespace

std::vector<AsNumber> AsGraph::customers(AsNumber as) const {
  return filter_neighbors(neighbors(as), RelKind::kCustomer);
}

std::vector<AsNumber> AsGraph::providers(AsNumber as) const {
  return filter_neighbors(neighbors(as), RelKind::kProvider);
}

std::vector<AsNumber> AsGraph::peers(AsNumber as) const {
  return filter_neighbors(neighbors(as), RelKind::kPeer);
}

bool AsGraph::in_customer_cone(AsNumber provider, AsNumber as) const {
  if (provider == as) return false;
  // Iterative DFS down provider-to-customer edges only (Fig. 4 Phase 2:
  // the path relationship constraint).
  std::unordered_set<AsNumber> visited{provider};
  std::vector<AsNumber> stack{provider};
  while (!stack.empty()) {
    const AsNumber current = stack.back();
    stack.pop_back();
    for (const auto& n : neighbors(current)) {
      if (n.kind != RelKind::kCustomer) continue;
      if (n.as == as) return true;
      if (visited.insert(n.as).second) stack.push_back(n.as);
    }
  }
  return false;
}

std::vector<AsNumber> AsGraph::customer_cone(AsNumber provider) const {
  std::vector<AsNumber> cone;
  std::unordered_set<AsNumber> visited{provider};
  std::vector<AsNumber> stack{provider};
  while (!stack.empty()) {
    const AsNumber current = stack.back();
    stack.pop_back();
    for (const auto& n : neighbors(current)) {
      if (n.kind != RelKind::kCustomer) continue;
      if (visited.insert(n.as).second) {
        cone.push_back(n.as);
        stack.push_back(n.as);
      }
    }
  }
  return cone;
}

std::vector<AsNumber> AsGraph::find_customer_path(AsNumber provider,
                                                  AsNumber target) const {
  if (provider == target) return {};
  std::unordered_map<AsNumber, AsNumber> parent;
  std::vector<AsNumber> stack{provider};
  parent.emplace(provider, provider);
  while (!stack.empty()) {
    const AsNumber current = stack.back();
    stack.pop_back();
    for (const auto& n : neighbors(current)) {
      if (n.kind != RelKind::kCustomer) continue;
      if (parent.contains(n.as)) continue;
      parent.emplace(n.as, current);
      if (n.as == target) {
        std::vector<AsNumber> path{target};
        AsNumber walk = target;
        while (walk != provider) {
          walk = parent.at(walk);
          path.push_back(walk);
        }
        return {path.rbegin(), path.rend()};
      }
      stack.push_back(n.as);
    }
  }
  return {};
}

bool AsGraph::is_valley_free(std::span<const AsNumber> path) const {
  if (path.size() < 2) return true;
  // Walk from origin (rightmost) toward the observer (leftmost).  The legal
  // shape is: uphill (customer announces to provider) *, at most one
  // peer-peer step, then downhill (provider announces to customer) *.
  enum class Stage { kUphill, kDownhill };
  Stage stage = Stage::kUphill;
  bool peer_seen = false;
  for (std::size_t i = path.size() - 1; i > 0; --i) {
    const AsNumber sender = path[i];
    const AsNumber receiver = path[i - 1];
    if (sender == receiver) continue;  // AS-path prepending
    const auto rel = relationship(sender, receiver);
    if (!rel) return false;  // unannotated adjacency
    switch (*rel) {
      case RelKind::kProvider:
        // sender announces to its provider: uphill step.
        if (stage != Stage::kUphill || peer_seen) return false;
        break;
      case RelKind::kPeer:
        if (peer_seen || stage == Stage::kDownhill) return false;
        peer_seen = true;
        break;
      case RelKind::kCustomer:
        // sender announces to its customer: downhill step.
        stage = Stage::kDownhill;
        break;
    }
  }
  return true;
}

}  // namespace bgpolicy::topo
