#include "topology/graph_view.h"

#include "util/ensure.h"

namespace bgpolicy::topo {

GraphView::GraphView(const AsGraph& graph) {
  const auto ases = graph.ases();
  util::ensure(ases.size() < kInvalidId, "GraphView: AS count overflows id");
  as_of_.assign(ases.begin(), ases.end());
  id_of_.reserve(ases.size());
  for (std::size_t i = 0; i < ases.size(); ++i) {
    id_of_.emplace(ases[i], static_cast<Id>(i));
  }

  offsets_.reserve(ases.size() + 1);
  arc_to_.reserve(graph.edge_count() * 2);
  arc_rel_.reserve(graph.edge_count() * 2);
  offsets_.push_back(0);
  for (const AsNumber as : ases) {
    for (const Neighbor& n : graph.neighbors(as)) {
      arc_to_.push_back(id_of_.at(n.as));
      arc_rel_.push_back(n.kind);
    }
    offsets_.push_back(static_cast<std::uint32_t>(arc_to_.size()));
  }
}

}  // namespace bgpolicy::topo
