// Address-space allocation for the synthetic Internet.
//
// Transit ASes receive large aligned blocks; stubs receive either
// provider-assigned space (carved from a provider's block — the
// precondition for the paper's "prefix aggregating" cause, Section 5.1.5
// Case 2) or provider-independent space.  Per-AS prefix counts are
// heavy-tailed, echoing Table 6's spread (22..344 prefixes per customer).
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "bgp/prefix.h"
#include "topology/topology_gen.h"
#include "util/rng.h"

namespace bgpolicy::topo {

struct OriginatedPrefix {
  bgp::Prefix prefix;
  AsNumber origin;
  /// Set when the prefix was carved out of this provider's block
  /// (provider-assigned space); the provider may aggregate it away.
  std::optional<AsNumber> allocated_from;
};

struct PrefixPlan {
  /// All originated prefixes, in a stable deterministic order.
  std::vector<OriginatedPrefix> prefixes;
  /// Origin AS -> indices into `prefixes`.
  std::unordered_map<AsNumber, std::vector<std::size_t>> by_origin;
  /// Transit AS -> its top-level allocated block.
  std::unordered_map<AsNumber, bgp::Prefix> transit_block;

  [[nodiscard]] std::size_t count_for(AsNumber origin) const {
    const auto it = by_origin.find(origin);
    return it == by_origin.end() ? 0 : it->second.size();
  }
};

struct PrefixAllocParams {
  std::uint64_t seed = 4002;
  /// Probability that a stub prefix lives in provider-assigned space.
  double provider_space_prob = 0.30;
  /// Heavy-tail exponent for per-stub prefix counts.
  double count_alpha = 1.05;
  /// Cap on prefixes per stub.
  std::uint64_t max_stub_prefixes = 48;
  /// Extra (more-specific) prefixes originated by each transit AS beyond
  /// its block, capped.
  std::uint64_t max_transit_extra = 6;

  friend bool operator==(const PrefixAllocParams&, const PrefixAllocParams&) =
      default;
};

/// Allocates prefixes for every AS in `topo`; deterministic in params.seed.
[[nodiscard]] PrefixPlan allocate_prefixes(const Topology& topo,
                                           const PrefixAllocParams& params);

}  // namespace bgpolicy::topo
