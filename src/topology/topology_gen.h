// Synthetic Internet topology generator.
//
// Substitute for the Nov-2002 RouteViews-derived AS graph (DESIGN.md §2):
// a tiered hierarchy — a Tier-1 peering clique, two transit tiers, and a
// large multihomed stub edge — with heavy-tailed degrees.  Tier-1 and
// vantage ASes are assigned the AS numbers the paper reports (AS1, AS3549,
// AS7018, ...) so the reproduced tables read like the originals; the
// numbers are labels only.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "topology/as_graph.h"
#include "util/rng.h"

namespace bgpolicy::topo {

enum class Tier : std::uint8_t { kTier1 = 1, kTier2 = 2, kTier3 = 3, kStub = 4 };

[[nodiscard]] std::string to_string(Tier tier);

struct GeneratorParams {
  std::uint64_t seed = 2002;

  std::size_t tier1_count = 10;
  std::size_t tier2_count = 60;
  std::size_t tier3_count = 240;
  std::size_t stub_count = 2400;

  /// Probability that a stub is multihomed (paper Table 8 reports ~75% of
  /// SA-origin ASes multihomed; the base rate feeding that statistic).
  double stub_multihome_prob = 0.55;
  /// Providers per multihomed stub are drawn uniformly in [2, this].
  std::size_t max_stub_providers = 4;

  /// Expected extra peer links per Tier-2 AS (beyond the provider edges).
  double tier2_peer_mean = 4.0;
  /// Expected peer links per Tier-3 AS.
  double tier3_peer_mean = 1.5;
  /// Probability of a stub-stub peer edge per stub (IXP-style).
  double stub_peer_prob = 0.02;
  /// Probability that a Tier-3 AS attaches directly to a Tier-1 provider.
  double tier3_direct_tier1_prob = 0.20;
  /// Share of stub provider attachments that land on each tier.  Tier-1s
  /// must end up with the largest degrees — the real Internet's shape, and
  /// the property the degree-based inference heuristic [12] depends on.
  double stub_tier1_frac = 0.30;
  double stub_tier2_frac = 0.30;

  /// Zipf-ish skew exponent for provider popularity (bigger = more skewed
  /// degrees at the top providers).
  double provider_popularity_skew = 0.6;

  friend bool operator==(const GeneratorParams&, const GeneratorParams&) =
      default;
};

struct Topology {
  AsGraph graph;
  std::unordered_map<AsNumber, Tier> tier;
  std::vector<AsNumber> tier1;
  std::vector<AsNumber> tier2;
  std::vector<AsNumber> tier3;
  std::vector<AsNumber> stubs;

  [[nodiscard]] Tier tier_of(AsNumber as) const { return tier.at(as); }
  [[nodiscard]] bool is_transit(AsNumber as) const {
    return tier_of(as) != Tier::kStub;
  }
};

/// Generates a topology; deterministic in params.seed.
[[nodiscard]] Topology generate_topology(const GeneratorParams& params);

/// The well-known AS numbers used for Tier-1 and vantage roles (exposed so
/// scenarios and tests can refer to them symbolically).
namespace well_known {
inline constexpr std::uint32_t kGte = 1;           // AS1, Tier-1
inline constexpr std::uint32_t kUunet = 701;       // Tier-1
inline constexpr std::uint32_t kSprint = 1239;     // Tier-1
inline constexpr std::uint32_t kGlobalCrossing = 3549;  // Tier-1
inline constexpr std::uint32_t kAtt = 7018;        // Tier-1
inline constexpr std::uint32_t kCw = 3561;         // Tier-1
inline constexpr std::uint32_t kVerio = 2914;      // Tier-1
inline constexpr std::uint32_t kTeleglobe = 6453;  // Tier-1
inline constexpr std::uint32_t kQwest = 209;       // Tier-1
inline constexpr std::uint32_t kAbovenet = 6461;   // Tier-1
}  // namespace well_known

}  // namespace bgpolicy::topo
