// scenario_check: parse + execute the verify block of .scn scenario specs.
//
//   scenario_check [options] <file.scn | dir> ...
//
//   --threads N   override the scenario's worker-thread knob (the verify
//                 outcome is identical at any value — determinism contract)
//   --store DIR   attach an on-disk artifact store (reuses cached stages)
//   --parse-only  stop after parsing (grammar check, no simulation)
//   --dump        print each spec's canonical full form and exit
//
// Directories expand to every *.scn inside, sorted by filename.  A spec
// with an empty verify block is a FAILURE: the corpus contract is that
// every scenario asserts something executable.  Exit code 0 only when
// every file parses and every assertion passes; failures are reported as
// "<file>:<line>: FAIL <assertion> — <evidence>".
//
// This binary backs the per-file ctest cases CMake registers for
// scenarios/*.scn and the CI scenario-corpus job.
#include <cstdio>
#include <exception>
#include <filesystem>
#include <optional>
#include <string>
#include <vector>

#include "core/artifact_store.h"
#include "core/experiment.h"
#include "core/scenario_spec.h"
#include "core/spec_verify.h"
#include "tool_args.h"

int main(int argc, char** argv) {
  using namespace bgpolicy;

  std::optional<std::uint64_t> threads;
  std::optional<std::string> store_dir;
  bool parse_only = false;
  bool dump = false;

  tools::ToolArgs args("scenario_check",
                       "parse .scn scenario specs and execute their verify "
                       "blocks (the scenario-corpus runner)");
  args.positional("FILE.scn|DIR", "spec files; directories expand to every "
                  "*.scn inside, sorted", 1);
  args.option_u64("--threads", &threads, "N",
                  "override the scenario's worker-thread knob (the verify "
                  "outcome is identical at any value)");
  args.option("--store", &store_dir, "DIR",
              "attach an on-disk artifact store (reuses cached stages)");
  args.flag("--parse-only", &parse_only,
            "stop after parsing (grammar check, no simulation)");
  args.flag("--dump", &dump,
            "print each spec's canonical full form and exit");
  if (const std::optional<int> code = args.parse(argc, argv)) return *code;

  std::vector<std::filesystem::path> inputs(args.positionals.begin(),
                                            args.positionals.end());

  // Expand directories; keep explicit file order, sort within a directory.
  std::vector<std::filesystem::path> files;
  for (const auto& input : inputs) {
    if (std::filesystem::is_directory(input)) {
      std::vector<std::filesystem::path> dir_files;
      for (const auto& entry : std::filesystem::directory_iterator(input)) {
        if (entry.is_regular_file() && entry.path().extension() == ".scn") {
          dir_files.push_back(entry.path());
        }
      }
      std::sort(dir_files.begin(), dir_files.end());
      files.insert(files.end(), dir_files.begin(), dir_files.end());
    } else {
      files.push_back(input);
    }
  }
  if (files.empty()) {
    std::fprintf(stderr, "scenario_check: no .scn files found\n");
    return 2;
  }

  std::optional<core::ArtifactStore> store;
  if (store_dir) store.emplace(*store_dir);

  std::size_t spec_count = 0;
  std::size_t check_count = 0;
  std::size_t failures = 0;

  for (const auto& file : files) {
    core::ScenarioSpec spec;
    try {
      spec = core::ScenarioSpec::parse_file(file);
    } catch (const std::exception& error) {
      std::fprintf(stderr, "%s\n", error.what());
      ++failures;
      continue;
    }
    ++spec_count;
    if (dump) {
      std::fputs(spec.dump().c_str(), stdout);
      continue;
    }
    std::printf("== %s (scenario %s, %zu event(s), %zu check(s))\n",
                file.string().c_str(), spec.scenario.name.c_str(),
                spec.events.size(), spec.checks.size());
    if (parse_only) continue;

    if (spec.checks.empty()) {
      std::printf("%s:1: FAIL — empty verify block (the corpus contract "
                  "requires executable assertions)\n",
                  file.string().c_str());
      ++failures;
      continue;
    }

    if (threads) spec.scenario.propagation.threads = *threads;
    core::RunOptions options;
    options.until = spec.required_stage();
    if (store) options.store = &*store;

    try {
      core::Experiment experiment(spec.scenario, options);
      const core::VerifyReport report =
          core::run_spec_checks(spec, experiment);
      for (const core::CheckResult& result : report.results) {
        ++check_count;
        std::printf("  %s %s:%zu: %s — %s\n",
                    result.passed ? "PASS" : "FAIL",
                    file.string().c_str(), result.check.loc.line,
                    core::describe_check(result.check).c_str(),
                    result.detail.c_str());
        if (!result.passed) ++failures;
      }
    } catch (const std::exception& error) {
      std::fprintf(stderr, "%s: error: %s\n", file.string().c_str(),
                   error.what());
      ++failures;
    }
  }

  std::printf("scenario_check: %zu spec(s), %zu check(s), %zu failure(s)\n",
              spec_count, check_count, failures);
  return failures == 0 ? 0 : 1;
}
