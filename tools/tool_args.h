// Tiny shared argument parser for the tools/ CLIs, so every binary gets
// the same conventions: `--help`/`-h` prints a uniform usage + flag table
// to stdout and exits 0; an unknown flag, malformed value, or missing
// positional prints usage to stderr and exits 2; values are accepted both
// as `--flag VALUE` and `--flag=VALUE`.
//
// Header-only on purpose — tools link only bgpolicy, and this stays a
// build-time convenience, not a library API.
//
//   tools::ToolArgs args("store_gc", "LRU garbage collection for a store");
//   args.positional("STORE_DIR", "artifact store directory", 1, 1);
//   args.option_u64("--max-bytes", &max_bytes, "N", "target store size");
//   args.flag("--verbose", &verbose, "print every eviction");
//   if (std::optional<int> code = args.parse(argc, argv)) return *code;
#pragma once

#include <charconv>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace bgpolicy::tools {

class ToolArgs {
 public:
  ToolArgs(std::string program, std::string summary)
      : program_(std::move(program)), summary_(std::move(summary)) {}

  /// Boolean switch (no value).
  ToolArgs& flag(std::string name, bool* out, std::string help) {
    specs_.push_back({std::move(name), "", std::move(help), /*takes_value=*/
                      false,
                      [out](const std::string&) {
                        *out = true;
                        return true;
                      }});
    return *this;
  }

  ToolArgs& option(std::string name, std::string* out, std::string value_name,
                   std::string help) {
    specs_.push_back({std::move(name), std::move(value_name), std::move(help),
                      true, [out](const std::string& value) {
                        *out = value;
                        return true;
                      }});
    return *this;
  }

  ToolArgs& option(std::string name, std::optional<std::string>* out,
                   std::string value_name, std::string help) {
    specs_.push_back({std::move(name), std::move(value_name), std::move(help),
                      true, [out](const std::string& value) {
                        *out = value;
                        return true;
                      }});
    return *this;
  }

  ToolArgs& option_u64(std::string name, std::uint64_t* out,
                       std::string value_name, std::string help) {
    specs_.push_back({std::move(name), std::move(value_name), std::move(help),
                      true, [out](const std::string& value) {
                        return parse_u64(value, out);
                      }});
    return *this;
  }

  ToolArgs& option_u64(std::string name, std::optional<std::uint64_t>* out,
                       std::string value_name, std::string help) {
    specs_.push_back({std::move(name), std::move(value_name), std::move(help),
                      true, [out](const std::string& value) {
                        std::uint64_t parsed = 0;
                        if (!parse_u64(value, &parsed)) return false;
                        *out = parsed;
                        return true;
                      }});
    return *this;
  }

  ToolArgs& option_double(std::string name, double* out,
                          std::string value_name, std::string help) {
    specs_.push_back({std::move(name), std::move(value_name), std::move(help),
                      true, [out](const std::string& value) {
                        try {
                          std::size_t used = 0;
                          *out = std::stod(value, &used);
                          return used == value.size();
                        } catch (...) {
                          return false;
                        }
                      }});
    return *this;
  }

  /// Declares the positional arguments: shown in usage as `LABEL`, with
  /// [min, max] accepted count (max SIZE_MAX = unbounded, rendered "...").
  ToolArgs& positional(std::string label, std::string help, std::size_t min,
                       std::size_t max = SIZE_MAX) {
    positional_label_ = std::move(label);
    positional_help_ = std::move(help);
    positional_min_ = min;
    positional_max_ = max;
    return *this;
  }

  /// Parses argv.  Returns nullopt when the tool should proceed; an exit
  /// code when it should stop (0 after --help, 2 on a usage error).
  [[nodiscard]] std::optional<int> parse(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      const std::string_view arg = argv[i];
      if (arg == "--help" || arg == "-h") {
        print_help(stdout);
        return 0;
      }
      if (arg.size() >= 2 && arg[0] == '-' && arg[1] == '-') {
        const std::size_t eq = arg.find('=');
        const std::string_view name =
            eq == std::string_view::npos ? arg : arg.substr(0, eq);
        Spec* spec = find(name);
        if (spec == nullptr) {
          return error("unknown flag '" + std::string(name) + "'");
        }
        std::string value;
        if (spec->takes_value) {
          if (eq != std::string_view::npos) {
            value = std::string(arg.substr(eq + 1));
          } else if (i + 1 < argc) {
            value = argv[++i];
          } else {
            return error("flag '" + spec->name + "' expects a value");
          }
        } else if (eq != std::string_view::npos) {
          return error("flag '" + spec->name + "' takes no value");
        }
        if (!spec->apply(value)) {
          return error("invalid value '" + value + "' for '" + spec->name +
                       "'");
        }
      } else {
        positionals.emplace_back(arg);
      }
    }
    if (positionals.size() < positional_min_) {
      return error(positional_min_ == 1
                       ? "missing required " + positional_label_
                       : "expected at least " +
                             std::to_string(positional_min_) + " " +
                             positional_label_ + " argument(s)");
    }
    if (positionals.size() > positional_max_) {
      return error("too many positional arguments");
    }
    return std::nullopt;
  }

  void print_usage(std::FILE* out) const {
    std::fprintf(out, "usage: %s%s%s\n", program_.c_str(),
                 specs_.empty() ? "" : " [options]",
                 positional_usage().c_str());
  }

  void print_help(std::FILE* out) const {
    print_usage(out);
    std::fprintf(out, "\n%s\n", summary_.c_str());
    if (!positional_help_.empty()) {
      std::fprintf(out, "\n  %-26s%s\n", positional_label_.c_str(),
                   positional_help_.c_str());
    }
    if (!specs_.empty()) {
      std::fprintf(out, "\noptions:\n");
      for (const Spec& spec : specs_) {
        std::string left = spec.name;
        if (spec.takes_value) left += " " + spec.value_name;
        std::fprintf(out, "  %-26s%s\n", left.c_str(), spec.help.c_str());
      }
    }
    std::fprintf(out, "  %-26s%s\n", "--help, -h", "show this message");
  }

  /// Non-flag arguments in command-line order (valid after parse()).
  std::vector<std::string> positionals;

 private:
  struct Spec {
    std::string name;
    std::string value_name;
    std::string help;
    bool takes_value = false;
    std::function<bool(const std::string&)> apply;
  };

  static bool parse_u64(const std::string& text, std::uint64_t* out) {
    const char* begin = text.c_str();
    const char* end = begin + text.size();
    const auto [ptr, ec] = std::from_chars(begin, end, *out);
    return ec == std::errc() && ptr == end && !text.empty();
  }

  Spec* find(std::string_view name) {
    for (Spec& spec : specs_) {
      if (spec.name == name) return &spec;
    }
    return nullptr;
  }

  std::string positional_usage() const {
    if (positional_label_.empty()) return "";
    std::string out = " ";
    if (positional_min_ == 0) {
      out += "[" + positional_label_ + "]";
    } else {
      out += positional_label_;
    }
    if (positional_max_ > 1) out += " ...";
    return out;
  }

  [[nodiscard]] std::optional<int> error(const std::string& message) const {
    std::fprintf(stderr, "%s: %s\n", program_.c_str(), message.c_str());
    print_usage(stderr);
    return 2;
  }

  std::string program_;
  std::string summary_;
  std::vector<Spec> specs_;
  std::string positional_label_;
  std::string positional_help_;
  std::size_t positional_min_ = 0;
  std::size_t positional_max_ = SIZE_MAX;
};

}  // namespace bgpolicy::tools
