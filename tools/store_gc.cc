// store_gc: LRU garbage collection for a long-lived artifact store
// (core::ArtifactStore) — keeps shared stores from PR 4's cross-process
// resume workflow from growing without bound.
//
// Eviction is least-recently-accessed first (the store bumps an entry's
// timestamp on every load, so "accessed" means read or written; filesystem
// atime is not trusted).  Entries pinned by an in-progress run (Simulate
// chunk artifacts mid-stage) and entries younger than --min-age-seconds
// are never evicted; entries are immutable files, so an eviction only ever
// costs a future recompute.
#include <chrono>
#include <cstdint>
#include <exception>
#include <iostream>
#include <optional>

#include "core/artifact_store.h"
#include "tool_args.h"

int main(int argc, char** argv) {
  using namespace bgpolicy;

  std::optional<std::uint64_t> max_bytes;
  std::uint64_t min_age_seconds = 3600;
  std::optional<std::uint64_t> clear_stale_pins_seconds;

  tools::ToolArgs args("store_gc",
                       "LRU garbage collection for an artifact store "
                       "(pin-aware; evicts oldest-accessed first)");
  args.positional("STORE_DIR", "artifact store directory", 1, 1);
  args.option_u64("--max-bytes", &max_bytes, "N",
                  "target store size; evicts until total .art bytes <= N");
  args.option_u64("--min-age-seconds", &min_age_seconds, "S",
                  "never evict entries accessed within the last S seconds "
                  "(default 3600)");
  args.option_u64("--clear-stale-pins", &clear_stale_pins_seconds, "S",
                  "first remove pin markers older than S seconds (a killed "
                  "run leaks its pins)");
  if (const std::optional<int> code = args.parse(argc, argv)) return *code;
  if (!max_bytes) {
    std::cerr << "store_gc: --max-bytes is required\n";
    args.print_usage(stderr);
    return 2;
  }

  try {
    const core::ArtifactStore store(args.positionals.front());
    if (clear_stale_pins_seconds) {
      const std::size_t cleared = store.clear_stale_pins(
          std::chrono::seconds(*clear_stale_pins_seconds));
      std::cout << "cleared " << cleared << " stale pin(s)\n";
    }
    const auto result =
        store.gc(*max_bytes, std::chrono::seconds(min_age_seconds));
    std::cout << "scanned " << result.scanned << " artifact(s), "
              << result.bytes_before << " bytes; evicted " << result.evicted
              << " (" << (result.bytes_before - result.bytes_after)
              << " bytes), kept " << result.pinned_kept
              << " pinned; store now " << result.bytes_after << " bytes\n";
    // Partial success is success: the store is a cache and gc is
    // best-effort, but report when the target was unreachable (everything
    // left is pinned or too young).
    if (result.bytes_after > *max_bytes) {
      std::cout << "note: target " << *max_bytes
                << " bytes not reached (remaining entries are pinned or "
                   "younger than --min-age-seconds)\n";
    }
  } catch (const std::exception& error) {
    std::cerr << "store_gc: " << error.what() << "\n";
    return 1;
  }
  return 0;
}
