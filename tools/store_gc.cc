// store_gc: LRU garbage collection for a long-lived artifact store
// (core::ArtifactStore) — keeps shared stores from PR 4's cross-process
// resume workflow from growing without bound.
//
// Eviction is least-recently-accessed first (the store bumps an entry's
// timestamp on every load, so "accessed" means read or written; filesystem
// atime is not trusted).  Entries pinned by an in-progress run (Simulate
// chunk artifacts mid-stage) and entries younger than --min-age-seconds
// are never evicted; entries are immutable files, so an eviction only ever
// costs a future recompute.
//
// Usage:
//   store_gc STORE_DIR --max-bytes N [--min-age-seconds S]
//            [--clear-stale-pins S]
//
//   --max-bytes N         target store size; evicts oldest-accessed
//                         artifacts until total .art bytes <= N
//   --min-age-seconds S   never evict entries accessed within the last S
//                         seconds (default 3600 — a generous in-progress
//                         window on top of pinning)
//   --clear-stale-pins S  first remove pin markers older than S seconds
//                         (a killed run leaks its pins; age them out
//                         before collecting)
#include <charconv>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <iostream>
#include <optional>
#include <string>

#include "core/artifact_store.h"

namespace {

std::optional<std::uint64_t> parse_u64(const char* text) {
  std::uint64_t value = 0;
  const char* end = text + std::strlen(text);
  const auto [ptr, ec] = std::from_chars(text, end, value);
  if (ec != std::errc() || ptr != end) return std::nullopt;
  return value;
}

int usage() {
  std::cerr << "usage: store_gc STORE_DIR --max-bytes N"
               " [--min-age-seconds S] [--clear-stale-pins S]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  const char* store_dir = nullptr;
  std::optional<std::uint64_t> max_bytes;
  std::uint64_t min_age_seconds = 3600;
  std::optional<std::uint64_t> clear_stale_pins_seconds;

  for (int i = 1; i < argc; ++i) {
    const auto flag_value = [&](const char* flag) -> const char* {
      if (std::strcmp(argv[i], flag) != 0) return nullptr;
      if (i + 1 >= argc) return nullptr;
      return argv[++i];
    };
    if (const char* value = flag_value("--max-bytes")) {
      max_bytes = parse_u64(value);
      if (!max_bytes) return usage();
    } else if (const char* value = flag_value("--min-age-seconds")) {
      const auto parsed = parse_u64(value);
      if (!parsed) return usage();
      min_age_seconds = *parsed;
    } else if (const char* value = flag_value("--clear-stale-pins")) {
      clear_stale_pins_seconds = parse_u64(value);
      if (!clear_stale_pins_seconds) return usage();
    } else if (argv[i][0] == '-') {
      return usage();
    } else if (store_dir == nullptr) {
      store_dir = argv[i];
    } else {
      return usage();
    }
  }
  if (store_dir == nullptr || !max_bytes) return usage();

  try {
    const bgpolicy::core::ArtifactStore store(store_dir);
    if (clear_stale_pins_seconds) {
      const std::size_t cleared = store.clear_stale_pins(
          std::chrono::seconds(*clear_stale_pins_seconds));
      std::cout << "cleared " << cleared << " stale pin(s)\n";
    }
    const auto result =
        store.gc(*max_bytes, std::chrono::seconds(min_age_seconds));
    std::cout << "scanned " << result.scanned << " artifact(s), "
              << result.bytes_before << " bytes; evicted " << result.evicted
              << " (" << (result.bytes_before - result.bytes_after)
              << " bytes), kept " << result.pinned_kept
              << " pinned; store now " << result.bytes_after << " bytes\n";
    // Partial success is success: the store is a cache and gc is
    // best-effort, but report when the target was unreachable (everything
    // left is pinned or too young).
    if (result.bytes_after > *max_bytes) {
      std::cout << "note: target " << *max_bytes
                << " bytes not reached (remaining entries are pinned or "
                   "younger than --min-age-seconds)\n";
    }
  } catch (const std::exception& error) {
    std::cerr << "store_gc: " << error.what() << "\n";
    return 1;
  }
  return 0;
}
