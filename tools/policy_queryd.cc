// policy_queryd: the policy-query service daemon (src/serve).
//
// Builds a serving snapshot by running a scenario's experiment through
// Analyze — against an on-disk artifact store when --store is given, so a
// warm store makes startup and every refresh a pure decode — publishes it
// in a SnapshotRegistry, and serves the frame protocol (serve/frame.h,
// docs/QUERY_SERVICE.md) on 127.0.0.1 with --threads event loops.
//
// --refresh N re-builds and re-publishes the snapshot every N seconds on a
// background thread.  The swap is an atomic pointer store: readers never
// block and in-flight queries finish on the snapshot they started with.
// (Scenarios are deterministic, so a refresh republishes identical
// artifacts with a bumped version — the swap *mechanism* is what stays
// exercised, and a store shared with a concurrently-running sweep picks up
// that sweep's artifacts without a restart.)
//
// SIGINT/SIGTERM stop the loops, close every connection, and exit 0.
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <exception>
#include <filesystem>
#include <memory>
#include <optional>
#include <string>
#include <thread>

#include <sys/eventfd.h>
#include <unistd.h>

#include "core/artifact_store.h"
#include "core/scenario.h"
#include "core/scenario_spec.h"
#include "serve/service.h"
#include "serve/snapshot.h"
#include "tool_args.h"

namespace {

// Signal flag + eventfd wakeup: the handler only does async-signal-safe
// work; the main thread sleeps on the eventfd instead of polling.
volatile std::sig_atomic_t g_stop = 0;
int g_stop_fd = -1;

void handle_signal(int) {
  g_stop = 1;
  const std::uint64_t one = 1;
  [[maybe_unused]] const ssize_t n = ::write(g_stop_fd, &one, sizeof(one));
}

/// NAME[:SEED] -> Scenario for the built-in families (small, internet2002).
std::optional<bgpolicy::core::Scenario> builtin_scenario(
    const std::string& spec) {
  const std::size_t colon = spec.find(':');
  const std::string name = spec.substr(0, colon);
  std::optional<std::uint64_t> seed;
  if (colon != std::string::npos) {
    try {
      seed = std::stoull(spec.substr(colon + 1));
    } catch (...) {
      return std::nullopt;
    }
  }
  if (name == "small") {
    return bgpolicy::core::Scenario::small(seed.value_or(42));
  }
  if (name == "internet2002") {
    return bgpolicy::core::Scenario::internet2002(seed.value_or(2002));
  }
  return std::nullopt;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bgpolicy;

  std::string scenario_arg;
  std::string spec_path;
  std::string store_dir;
  std::string port_file;
  std::uint64_t port = 0;
  std::uint64_t threads = 1;
  std::uint64_t build_threads = 0;
  std::uint64_t refresh_seconds = 0;

  tools::ToolArgs args(
      "policy_queryd",
      "policy-query daemon: serves SA-prevalence, homing, causes,\n"
      "path-availability, and what-if re-inference queries over the frame\n"
      "protocol (docs/QUERY_SERVICE.md) from an atomic snapshot registry");
  args.option("--scenario", &scenario_arg, "NAME[:SEED]",
              "built-in scenario: small or internet2002");
  args.option("--spec", &spec_path, "FILE.scn",
              "serve a .scn scenario spec instead of a built-in");
  args.option("--store", &store_dir, "DIR",
              "artifact store (warm entries make startup a decode)");
  args.option_u64("--port", &port, "PORT",
                  "listen port on 127.0.0.1 (0 = ephemeral, default)");
  args.option_u64("--threads", &threads, "N",
                  "event-loop threads (default 1; answers are identical "
                  "at any value)");
  args.option_u64("--build-threads", &build_threads, "N",
                  "worker threads for snapshot builds (0 = scenario's own)");
  args.option_u64("--refresh", &refresh_seconds, "SECONDS",
                  "rebuild + republish the snapshot every N seconds "
                  "(0 = never, default)");
  args.option("--port-file", &port_file, "FILE",
              "write the bound port to FILE once listening (for CI)");
  if (const std::optional<int> code = args.parse(argc, argv)) return *code;

  if (scenario_arg.empty() == spec_path.empty()) {
    std::fprintf(stderr,
                 "policy_queryd: exactly one of --scenario or --spec is "
                 "required\n");
    return 2;
  }
  if (port > 65535) {
    std::fprintf(stderr, "policy_queryd: --port out of range\n");
    return 2;
  }

  try {
    core::Scenario scenario;
    if (!scenario_arg.empty()) {
      std::optional<core::Scenario> built = builtin_scenario(scenario_arg);
      if (!built) {
        std::fprintf(stderr, "policy_queryd: unknown scenario '%s'\n",
                     scenario_arg.c_str());
        return 2;
      }
      scenario = std::move(*built);
    } else {
      scenario = core::ScenarioSpec::parse_file(spec_path).scenario;
    }
    if (build_threads > 0) {
      scenario.propagation.threads = static_cast<std::size_t>(build_threads);
    }

    std::optional<core::ArtifactStore> store;
    core::RunOptions run_options;
    if (!store_dir.empty()) {
      store.emplace(store_dir);
      run_options.store = &*store;
    }

    serve::SnapshotRegistry registry;
    std::printf("policy_queryd: building snapshot for scenario '%s'...\n",
                scenario.name.c_str());
    std::fflush(stdout);
    registry.publish(serve::build_snapshot(scenario, run_options));

    serve::ServiceConfig config;
    config.port = static_cast<std::uint16_t>(port);
    config.threads = static_cast<std::size_t>(threads);
    serve::QueryService service(registry, config);
    service.start();

    g_stop_fd = ::eventfd(0, EFD_CLOEXEC);
    std::signal(SIGINT, handle_signal);
    std::signal(SIGTERM, handle_signal);
    std::signal(SIGPIPE, SIG_IGN);

    std::printf("policy_queryd: serving scenario '%s' on 127.0.0.1:%u "
                "(%zu thread(s), refresh %llu s)\n",
                scenario.name.c_str(), service.port(), service.loop_count(),
                static_cast<unsigned long long>(refresh_seconds));
    std::fflush(stdout);
    if (!port_file.empty()) {
      // Port file written only after start(): its existence is the CI
      // signal that the daemon accepts connections.
      std::FILE* out = std::fopen(port_file.c_str(), "w");
      if (out == nullptr) {
        std::fprintf(stderr, "policy_queryd: cannot write %s\n",
                     port_file.c_str());
        return 1;
      }
      std::fprintf(out, "%u\n", service.port());
      std::fclose(out);
    }

    // Background refresh: republish a freshly built snapshot on a timer.
    std::thread refresher;
    if (refresh_seconds > 0) {
      refresher = std::thread([&] {
        while (g_stop == 0) {
          // Sleep in 200ms slices so shutdown never waits a full period.
          for (std::uint64_t waited_ms = 0;
               g_stop == 0 && waited_ms < refresh_seconds * 1000;
               waited_ms += 200) {
            std::this_thread::sleep_for(std::chrono::milliseconds(200));
          }
          if (g_stop != 0) break;
          try {
            registry.publish(serve::build_snapshot(scenario, run_options));
            std::printf("policy_queryd: published snapshot v%llu\n",
                        static_cast<unsigned long long>(registry.published()));
            std::fflush(stdout);
          } catch (const std::exception& error) {
            // A failed refresh keeps serving the current snapshot.
            std::fprintf(stderr, "policy_queryd: refresh failed: %s\n",
                         error.what());
          }
        }
      });
    }

    // Block until a signal arrives.
    std::uint64_t value = 0;
    while (g_stop == 0) {
      const ssize_t n = ::read(g_stop_fd, &value, sizeof(value));
      if (n < 0 && errno != EINTR) break;
    }

    std::printf("policy_queryd: shutting down\n");
    std::fflush(stdout);
    if (refresher.joinable()) refresher.join();
    service.stop();
    const serve::EventLoopStats stats = service.stats();
    std::printf("policy_queryd: served %llu frame(s) over %llu "
                "connection(s), %llu malformed close(s)\n",
                static_cast<unsigned long long>(stats.frames_out),
                static_cast<unsigned long long>(stats.accepted),
                static_cast<unsigned long long>(stats.malformed_closes));
    ::close(g_stop_fd);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "policy_queryd: %s\n", error.what());
    return 1;
  }
  return 0;
}
