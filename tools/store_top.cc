// store_top: per-kind census of an artifact store directory — how many
// artifacts of each kind (GroundTruth, SimArtifact, ..., SimChunk) a store
// holds and how many bytes each kind costs.  The operational companion to
// store_gc: run it before choosing a --max-bytes target, or after a sweep
// to see what the cache is actually made of.
//
// Reads only each file's 24-byte codec header (io::peek_artifact_header),
// so the census stays cheap on multi-gigabyte stores; files without a
// valid header are reported as "foreign".
#include <array>
#include <cstdio>
#include <exception>
#include <fstream>
#include <string>
#include <vector>

#include "core/artifact_store.h"
#include "io/artifact_codec.h"
#include "tool_args.h"

namespace {

struct KindRow {
  std::string label;
  std::uint64_t count = 0;
  std::uint64_t bytes = 0;
};

std::optional<bgpolicy::io::ArtifactHeader> read_header(
    const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::array<std::uint8_t, bgpolicy::io::kArtifactHeaderBytes> prefix{};
  in.read(reinterpret_cast<char*>(prefix.data()),
          static_cast<std::streamsize>(prefix.size()));
  if (!in) return std::nullopt;
  return bgpolicy::io::peek_artifact_header(prefix);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bgpolicy;

  bool show_entries = false;
  tools::ToolArgs args("store_top",
                       "per-kind artifact census of a store directory");
  args.positional("STORE_DIR", "artifact store directory", 1, 1);
  args.flag("--entries", &show_entries,
            "also list every artifact (kind, bytes, pinned)");
  if (const std::optional<int> code = args.parse(argc, argv)) return *code;

  try {
    const core::ArtifactStore store(args.positionals.front());
    const std::vector<core::ArtifactStore::Entry> entries = store.list();

    // Rows indexed by raw kind tag; slot 0 collects foreign/unreadable.
    std::vector<KindRow> rows;
    const auto row_for = [&rows](std::uint16_t kind) -> KindRow& {
      if (rows.size() <= kind) rows.resize(kind + 1);
      return rows[kind];
    };
    row_for(0).label = "foreign";
    for (std::uint16_t kind = 1; kind <= 6; ++kind) {
      row_for(kind).label =
          io::to_string(static_cast<io::ArtifactKind>(kind));
    }

    std::uint64_t total_bytes = 0;
    std::uint64_t pinned_count = 0;
    for (const core::ArtifactStore::Entry& entry : entries) {
      const auto header = read_header(entry.path);
      const std::uint16_t kind = header ? header->kind : 0;
      KindRow& row = row_for(kind);
      if (row.label.empty()) row.label = "kind-" + std::to_string(kind);
      ++row.count;
      row.bytes += entry.bytes;
      total_bytes += entry.bytes;
      if (entry.pinned) ++pinned_count;
      if (show_entries) {
        std::printf("%s  %-18s %12llu bytes%s\n",
                    entry.path.filename().string().c_str(),
                    row.label.c_str(),
                    static_cast<unsigned long long>(entry.bytes),
                    entry.pinned ? "  [pinned]" : "");
      }
    }

    std::printf("%-18s %8s %14s\n", "kind", "count", "bytes");
    for (const KindRow& row : rows) {
      if (row.count == 0) continue;
      std::printf("%-18s %8llu %14llu\n", row.label.c_str(),
                  static_cast<unsigned long long>(row.count),
                  static_cast<unsigned long long>(row.bytes));
    }
    std::printf("%-18s %8zu %14llu  (%llu pinned)\n", "total",
                entries.size(),
                static_cast<unsigned long long>(total_bytes),
                static_cast<unsigned long long>(pinned_count));
  } catch (const std::exception& error) {
    std::fprintf(stderr, "store_top: %s\n", error.what());
    return 1;
  }
  return 0;
}
