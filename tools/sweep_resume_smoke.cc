// CI smoke test for cross-process sweep resume (ISSUE 4): runs the same
// sweep twice against one artifact store and asserts the second run
// executes ZERO Simulate stages (every artifact is served from disk) while
// producing byte-identical products.  Exits non-zero with a diagnostic on
// any violation, so a broken cache key, codec, or store shows up as a red
// CI step, not a silent full recompute.
//
// (An existing populated store is fine — the first run then loads too.)
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "tool_args.h"

#include "asrel/relationships.h"
#include "asrel/tier_classify.h"
#include "core/artifact_store.h"
#include "core/experiment.h"
#include "core/scenario.h"

using namespace bgpolicy;

namespace {

std::vector<core::SweepVariant> make_variants() {
  // Two distinct worlds plus an inference-knob variant: exercises both the
  // shared-upstream path and the per-variant artifacts.
  core::SweepVariant base;
  base.label = "base";
  base.scenario = core::Scenario::small(31);

  core::SweepVariant no_peers = base;
  no_peers.label = "no-peers";
  no_peers.options.gao = asrel::GaoParams{};
  no_peers.options.gao->detect_peers = false;

  core::SweepVariant other;
  other.label = "seed32";
  other.scenario = core::Scenario::small(32);

  return {base, no_peers, other};
}

std::string report_digest(const core::SweepReport& report) {
  std::string out;
  for (const core::SweepRun& run : report.runs) {
    out += run.label + "\n";
    out += asrel::canonical_serialize(run.inference.inferred);
    out += asrel::canonical_serialize(run.inference.tiers);
    out += core::canonical_serialize(run.analyses);
  }
  return out;
}

void print_ledger(const char* label, const core::SweepReport& report) {
  const auto& c = report.counters;
  const auto& l = report.loads;
  std::cout << label << ": executed"
            << " synthesize=" << c.synthesize << " simulate=" << c.simulate
            << " observe=" << c.observe << " infer=" << c.infer
            << " analyze=" << c.analyze << " | loaded"
            << " synthesize=" << l.synthesize << " simulate=" << l.simulate
            << " observe=" << l.observe << " infer=" << l.infer
            << " analyze=" << l.analyze << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  tools::ToolArgs args("sweep_resume_smoke",
                       "CI smoke test for cross-process sweep resume: runs "
                       "one sweep twice against a store and asserts the "
                       "second run executes zero stages");
  args.positional("STORE_DIR",
                  "artifact store directory (default: a fresh directory "
                  "under the system temp path)",
                  0, 1);
  if (const std::optional<int> code = args.parse(argc, argv)) return *code;

  std::filesystem::path store_dir;
  if (!args.positionals.empty()) {
    store_dir = args.positionals.front();
  } else {
    store_dir = std::filesystem::temp_directory_path() /
                "bgpolicy-sweep-resume-smoke";
    std::filesystem::remove_all(store_dir);
  }
  core::ArtifactStore store(store_dir);
  std::cout << "artifact store: " << store.root().string() << "\n";

  const std::vector<core::SweepVariant> variants = make_variants();

  const core::SweepReport first = core::sweep(variants, 0, &store);
  print_ledger("first run ", first);

  const core::SweepReport second = core::sweep(variants, 0, &store);
  print_ledger("second run", second);

  int failures = 0;
  const auto expect = [&](bool ok, const std::string& what) {
    if (!ok) {
      std::cerr << "FAIL: " << what << "\n";
      ++failures;
    }
  };

  expect(second.counters.simulate == 0,
         "second run executed " + std::to_string(second.counters.simulate) +
             " Simulate stages (want 0: every artifact served from the store)");
  expect(second.counters.synthesize == 0 && second.counters.observe == 0,
         "second run re-executed upstream stages");
  expect(second.counters.infer == 0 && second.counters.analyze == 0,
         "second run re-executed variant stages");
  expect(second.loads.simulate == first.counters.simulate +
                                      first.loads.simulate,
         "second-run Simulate loads do not cover every upstream scenario");
  expect(report_digest(first) == report_digest(second),
         "products differ between the computing run and the resumed run");

  if (failures == 0) {
    std::cout << "OK: resumed sweep executed zero stages and reproduced "
                 "byte-identical products ("
              << store.size() << " artifacts on disk)\n";
    return EXIT_SUCCESS;
  }
  return EXIT_FAILURE;
}
