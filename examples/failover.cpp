// Failover with BGP conditional advertisement — the mechanism the paper
// cites (Section 5.1.5, reference [18]) that lets a multihomed customer
// keep a backup announcement path without carrying inbound traffic on it.
//
// Timeline demonstrated:
//   t0  healthy: the prefix is announced only to provider-C; tier1-D sees
//       an SA prefix (peer route to its own indirect customer);
//   t1  the A-C link fails: the conditional advertisement toward B
//       activates, reachability is restored through B;
//   t2  the link heals: the network returns to the steady state.
//
//   $ failover
#include <iostream>

#include "sim/propagation.h"
#include "util/text_table.h"

using namespace bgpolicy;
using util::AsNumber;

namespace {

struct World {
  topo::AsGraph graph;
  AsNumber a{64512}, b{64513}, c{64514}, d{64515}, e{64516};
};

World make_world() {
  World w;
  for (const auto as : {w.a, w.b, w.c, w.d, w.e}) w.graph.add_as(as);
  w.graph.add_provider_customer(w.b, w.a);
  w.graph.add_provider_customer(w.c, w.a);
  w.graph.add_provider_customer(w.d, w.b);
  w.graph.add_provider_customer(w.e, w.c);
  w.graph.add_peer_peer(w.d, w.e);
  return w;
}

const char* name_of(const World& w, AsNumber as) {
  if (as == w.a) return "customer-A";
  if (as == w.b) return "provider-B";
  if (as == w.c) return "provider-C";
  if (as == w.d) return "tier1-D";
  if (as == w.e) return "tier1-E";
  return "?";
}

void snapshot(const World& w, const sim::PropagationEngine& engine,
              const bgp::Prefix& prefix, const std::string& title) {
  const auto state = engine.propagate({prefix, w.a});
  util::TextTable table({"AS", "best path", "via"});
  for (const auto as : w.graph.ases()) {
    if (as == w.a) continue;
    const bgp::Route* best = state.best_at(as);
    table.add_row({name_of(w, as),
                   best ? best->path.to_string() : "(unreachable)",
                   best ? name_of(w, best->learned_from) : "-"});
  }
  std::cout << table.render(title) << "\n";
}

}  // namespace

int main() {
  const World w = make_world();
  const bgp::Prefix prefix = bgp::Prefix::parse("203.0.113.0/24");

  sim::PolicySet policies;
  for (const auto as : w.graph.ases()) policies.by_as.emplace(as, sim::AsPolicy{});
  // One conditional advertisement expresses the whole policy: the prefix
  // goes to B only while the A-C session is down; otherwise C is the sole
  // announcement path.
  policies.at_mut(w.a).conditional.push_back({prefix, w.b, w.c});

  sim::PropagationEngine engine(w.graph, policies);
  sim::FailedEdges failures;
  engine.set_failures(&failures);

  std::cout << "customer-A announces 203.0.113.0/24 via provider-C only,\n"
               "with a conditional advertisement to provider-B watching the "
               "A-C session.\n\n";

  snapshot(w, engine, prefix, "t0: healthy (conditional suppressed)");
  std::cout << "  -> tier1-D holds a peer route to its indirect customer: "
               "an SA prefix.\n\n";

  failures.fail(w.a, w.c);
  snapshot(w, engine, prefix, "t1: A-C session down (conditional active)");
  std::cout << "  -> the backup announcement restores reachability via B.\n\n";

  failures.restore(w.a, w.c);
  snapshot(w, engine, prefix, "t2: A-C session restored");
  std::cout << "  -> back to the steady state; the backup goes quiet again.\n";
  return 0;
}
