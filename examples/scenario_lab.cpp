// Scenario lab: a command-line driver over the staged experiment API for
// sensitivity studies — sweep a policy knob and watch the paper's headline
// statistics move.
//
//   $ scenario_lab [--seed N] [--stubs N] [--selective P] [--multihome P]
//                  [--sweep selective|multihome|prepend|gao] [--steps N]
//                  [--threads N] [--store DIR] [--spec FILE.scn|DIR]
//
// With --spec, each .scn scenario spec (docs/SCENARIOS.md) runs through the
// staged pipeline, its verify block executes, and its headline stats join
// the table — the interactive spelling of tools/scenario_check.
//
// With --sweep, the chosen knob is swept across `--steps` values through
// core::sweep — variants run sharded across the thread pool, and upstream
// artifacts are cached per distinct scenario (the `gao` sweep varies only
// inference parameters, so every variant reuses ONE synthesized/simulated
// world).  Without it a single staged run is reported.
//
// With --store DIR, stage artifacts persist to an on-disk artifact store:
// run the same command twice and the second run loads everything (watch
// the executed-vs-loaded ledger); kill a sweep halfway and the re-run
// recomputes only the missing variants.
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "core/artifact_store.h"
#include "core/experiment.h"
#include "core/prepending.h"
#include "core/scenario_spec.h"
#include "core/spec_verify.h"
#include "util/text_table.h"

using namespace bgpolicy;

namespace {

struct Options {
  std::uint64_t seed = 11;
  std::size_t stubs = 400;
  double selective = 0.55;
  double multihome = 0.55;
  double prepend = 0.15;
  std::string sweep;
  std::size_t steps = 5;
  std::size_t threads = 0;
  std::string store_dir;
  std::string spec_path;
};

Options parse_args(int argc, char** argv) {
  Options opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << arg << "\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--seed") {
      opts.seed = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--stubs") {
      opts.stubs = std::strtoul(next(), nullptr, 10);
    } else if (arg == "--selective") {
      opts.selective = std::strtod(next(), nullptr);
    } else if (arg == "--multihome") {
      opts.multihome = std::strtod(next(), nullptr);
    } else if (arg == "--prepend") {
      opts.prepend = std::strtod(next(), nullptr);
    } else if (arg == "--sweep") {
      opts.sweep = next();
    } else if (arg == "--steps") {
      opts.steps = std::strtoul(next(), nullptr, 10);
    } else if (arg == "--threads") {
      opts.threads = std::strtoul(next(), nullptr, 10);
    } else if (arg == "--store") {
      opts.store_dir = next();
    } else if (arg == "--spec") {
      opts.spec_path = next();
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: scenario_lab [--seed N] [--stubs N] "
                   "[--selective P] [--multihome P] [--prepend P]\n"
                   "                    [--sweep selective|multihome|prepend|"
                   "gao] [--steps N] [--threads N] [--store DIR]\n"
                   "                    [--spec FILE.scn|DIR]\n"
                   "With --spec, each .scn scenario spec (docs/SCENARIOS.md) "
                   "is run through the\nstaged pipeline, its verify block is "
                   "executed, and its headline stats join\nthe table; the "
                   "knob flags are ignored.\n";
      std::exit(0);
    } else {
      std::cerr << "unknown flag " << arg << " (try --help)\n";
      std::exit(2);
    }
  }
  return opts;
}

core::Scenario make_scenario(const Options& opts) {
  core::Scenario scenario = core::Scenario::small(opts.seed);
  scenario.topo_params.stub_count = opts.stubs;
  scenario.topo_params.stub_multihome_prob = opts.multihome;
  scenario.policy_params.origin_selective_as_prob = opts.selective;
  scenario.policy_params.prepend_as_prob = opts.prepend;
  return scenario;
}

struct RunStats {
  double sa_pct_as1 = 0;
  double multihomed_pct = 0;
  double typical_pct = 0;
  double prepended_pct = 0;
  double accuracy = 0;
};

// Stats shared by the single-run and sweep paths, read from staged
// artifacts: per-vantage bundles from the Analyze suite, accuracy scored
// against the upstream ground truth, prepending from the collector table.
RunStats stats_from(const core::GroundTruth& truth,
                    const sim::SimResult& sim,
                    const core::InferenceProducts& inference,
                    const core::AnalysisSuite& analyses) {
  RunStats stats;
  stats.accuracy = 100.0 * inference.inferred.accuracy_against(truth.topo.graph);
  if (const core::VantageAnalysis* as1 = analyses.find(util::AsNumber(1))) {
    stats.sa_pct_as1 = as1->sa.percent_sa;
    stats.multihomed_pct = as1->homing.percent_multihomed;
    if (as1->import_typicality) {
      stats.typical_pct = as1->import_typicality->percent_typical;
    }
  }
  stats.prepended_pct = core::analyze_prepending(sim.collector).percent_prepended;
  return stats;
}

}  // namespace

int main(int argc, char** argv) {
  const Options base = parse_args(argc, argv);

  // Optional on-disk artifact store: a second identical invocation loads
  // every artifact instead of recomputing (see the ledger line below).
  std::unique_ptr<core::ArtifactStore> store;
  if (!base.store_dir.empty()) {
    store = std::make_unique<core::ArtifactStore>(base.store_dir);
    std::cout << "Artifact store: " << store->root().string() << " ("
              << store->size() << " artifacts on disk)\n";
  }

  util::TextTable table({"knob setting", "% SA @AS1", "% multihomed origins",
                         "% typical import @AS1", "% prepended routes",
                         "inference accuracy %"});
  const auto add_row = [&](const std::string& label, const RunStats& stats) {
    table.add_row({label, util::fmt(stats.sa_pct_as1, 1),
                   util::fmt(stats.multihomed_pct, 1),
                   util::fmt(stats.typical_pct, 1),
                   util::fmt(stats.prepended_pct, 2),
                   util::fmt(stats.accuracy, 2)});
  };

  if (!base.spec_path.empty()) {
    // Spec mode: run every .scn through the staged pipeline and execute
    // its verify block (scenario_check is the strict CI spelling of this).
    std::vector<core::ScenarioSpec> specs;
    try {
      if (std::filesystem::is_directory(base.spec_path)) {
        specs = core::load_spec_dir(base.spec_path);
      } else {
        specs.push_back(core::ScenarioSpec::parse_file(base.spec_path));
      }
    } catch (const std::exception& error) {
      std::cerr << error.what() << "\n";
      return 2;
    }
    std::cout << "Running " << specs.size() << " scenario spec(s) from "
              << base.spec_path << "...\n";
    std::size_t failures = 0;
    for (core::ScenarioSpec& spec : specs) {
      if (base.threads != 0) spec.scenario.propagation.threads = base.threads;
      core::RunOptions options;
      options.store = store.get();
      core::Experiment experiment(spec.scenario, options);
      experiment.run();
      add_row(spec.scenario.name,
              stats_from(experiment.truth(), experiment.sim().sim,
                         experiment.inference(), experiment.analyses()));
      const core::VerifyReport report =
          core::run_spec_checks(spec, experiment);
      std::cout << "  " << spec.source << ": verify "
                << report.results.size() - report.failure_count() << "/"
                << report.results.size() << " passed\n";
      for (const core::CheckResult& result : report.results) {
        if (result.passed) continue;
        std::cout << "    FAIL " << spec.source << ":" << result.check.loc.line
                  << ": " << core::describe_check(result.check) << " — "
                  << result.detail << "\n";
        ++failures;
      }
    }
    std::cout << table.render("scenario_lab results") << "\n";
    return failures == 0 ? 0 : 1;
  }

  if (base.sweep.empty()) {
    std::cout << "Single staged run (seed " << base.seed << ", " << base.stubs
              << " stubs)...\n";
    core::RunOptions options;
    options.store = store.get();
    core::Experiment experiment(make_scenario(base), options);
    experiment.run();
    add_row("baseline",
            stats_from(experiment.truth(), experiment.sim().sim,
                       experiment.inference(), experiment.analyses()));
    if (store) {
      const auto& c = experiment.counters();
      const auto& l = experiment.loads();
      std::cout << "Stages executed: " << c.synthesize + c.simulate +
                       c.observe + c.infer + c.analyze
                << ", loaded from store: "
                << l.synthesize + l.simulate + l.observe + l.infer + l.analyze
                << "\n";
    }
  } else {
    std::vector<core::SweepVariant> variants;
    for (std::size_t i = 0; i < base.steps; ++i) {
      const double value =
          base.steps == 1
              ? 0.0
              : static_cast<double>(i) / static_cast<double>(base.steps - 1);
      Options opts = base;
      core::SweepVariant variant;
      if (base.sweep == "selective") {
        opts.selective = value;
        variant.label = "selective = " + util::fmt(value, 2);
      } else if (base.sweep == "multihome") {
        opts.multihome = 0.2 + 0.75 * value;  // degenerate worlds below 0.2
        variant.label = "multihome = " + util::fmt(opts.multihome, 2);
      } else if (base.sweep == "prepend") {
        opts.prepend = value;
        variant.label = "prepend = " + util::fmt(value, 2);
      } else if (base.sweep == "gao") {
        // Inference-parameter sweep: the scenario never changes, so every
        // variant reuses one cached upstream world.
        asrel::GaoParams gao;
        gao.peer_degree_ratio = 10.0 + 110.0 * value;
        variant.options.gao = gao;
        variant.label = "gao R = " + util::fmt(gao.peer_degree_ratio, 0);
      } else {
        std::cerr << "unknown sweep knob " << base.sweep << "\n";
        return 2;
      }
      variant.scenario = make_scenario(opts);
      variants.push_back(std::move(variant));
    }

    std::cout << "Sweeping --" << base.sweep << " over " << base.steps
              << " settings (seed " << base.seed << ")...\n";
    const core::SweepReport report =
        core::sweep(variants, base.threads, store.get());
    for (const core::SweepRun& run : report.runs) {
      const core::Experiment& up = *report.upstream[run.scenario_index];
      add_row(run.label, stats_from(up.truth(), up.sim().sim, run.inference,
                                    run.analyses));
    }
    std::cout << "Upstream worlds synthesized: " << report.distinct_scenarios
              << " for " << report.runs.size()
              << " variants (stage runs: " << report.counters.synthesize
              << " synthesize, " << report.counters.infer << " infer)\n";
    if (store) {
      std::cout << "Resume ledger: executed " << report.counters.simulate
                << " simulate / " << report.counters.infer
                << " infer stages, loaded " << report.loads.simulate
                << " / " << report.loads.infer << " from the store\n";
    }
  }
  std::cout << table.render("scenario_lab results") << "\n";
  std::cout << "Reading: SA prevalence tracks the selective-announcement "
               "rate (the paper's causal story); import typicality and "
               "inference accuracy stay high throughout.\n";
  return 0;
}
