// Scenario lab: a command-line driver over the full pipeline for
// sensitivity studies — sweep a policy knob and watch the paper's headline
// statistics move.
//
//   $ scenario_lab [--seed N] [--stubs N] [--selective P] [--multihome P]
//                  [--sweep selective|multihome|prepend] [--steps N]
//
// With --sweep, the chosen knob is swept across `--steps` values and one
// row is printed per setting; without it a single run is reported.
#include <cstdlib>
#include <iostream>
#include <string>

#include "core/export_inference.h"
#include "core/homing.h"
#include "core/import_inference.h"
#include "core/pipeline.h"
#include "core/prepending.h"
#include "util/text_table.h"

using namespace bgpolicy;

namespace {

struct Options {
  std::uint64_t seed = 11;
  std::size_t stubs = 400;
  double selective = 0.55;
  double multihome = 0.55;
  double prepend = 0.15;
  std::string sweep;
  std::size_t steps = 5;
};

Options parse_args(int argc, char** argv) {
  Options opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << arg << "\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--seed") {
      opts.seed = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--stubs") {
      opts.stubs = std::strtoul(next(), nullptr, 10);
    } else if (arg == "--selective") {
      opts.selective = std::strtod(next(), nullptr);
    } else if (arg == "--multihome") {
      opts.multihome = std::strtod(next(), nullptr);
    } else if (arg == "--prepend") {
      opts.prepend = std::strtod(next(), nullptr);
    } else if (arg == "--sweep") {
      opts.sweep = next();
    } else if (arg == "--steps") {
      opts.steps = std::strtoul(next(), nullptr, 10);
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: scenario_lab [--seed N] [--stubs N] "
                   "[--selective P] [--multihome P] [--prepend P]\n"
                   "                    [--sweep selective|multihome|prepend] "
                   "[--steps N]\n";
      std::exit(0);
    } else {
      std::cerr << "unknown flag " << arg << " (try --help)\n";
      std::exit(2);
    }
  }
  return opts;
}

struct RunStats {
  double sa_pct_as1 = 0;
  double multihomed_pct = 0;
  double typical_pct = 0;
  double prepended_pct = 0;
  double accuracy = 0;
};

RunStats run_once(const Options& opts) {
  core::Scenario scenario = core::Scenario::small(opts.seed);
  scenario.topo_params.stub_count = opts.stubs;
  scenario.topo_params.stub_multihome_prob = opts.multihome;
  scenario.policy_params.origin_selective_as_prob = opts.selective;
  scenario.policy_params.prepend_as_prob = opts.prepend;
  const core::Pipeline pipe = core::run_pipeline(scenario);

  RunStats stats;
  stats.accuracy = 100.0 * pipe.inferred.accuracy_against(pipe.topo.graph);

  const util::AsNumber as1{1};
  const auto sa = core::infer_sa_prefixes(pipe.table_for(as1), as1,
                                          pipe.inferred_graph,
                                          pipe.inferred_oracle());
  stats.sa_pct_as1 = sa.percent_sa;
  stats.multihomed_pct =
      core::analyze_homing(sa, pipe.inferred_graph).percent_multihomed;
  stats.typical_pct =
      core::analyze_import_typicality(pipe.sim.looking_glass.at(as1),
                                      pipe.inferred_oracle())
          .percent_typical;
  stats.prepended_pct =
      core::analyze_prepending(pipe.sim.collector).percent_prepended;
  return stats;
}

}  // namespace

int main(int argc, char** argv) {
  const Options base = parse_args(argc, argv);

  util::TextTable table({"knob setting", "% SA @AS1", "% multihomed origins",
                         "% typical import @AS1", "% prepended routes",
                         "inference accuracy %"});
  const auto add_row = [&](const std::string& label, const RunStats& stats) {
    table.add_row({label, util::fmt(stats.sa_pct_as1, 1),
                   util::fmt(stats.multihomed_pct, 1),
                   util::fmt(stats.typical_pct, 1),
                   util::fmt(stats.prepended_pct, 2),
                   util::fmt(stats.accuracy, 2)});
  };

  if (base.sweep.empty()) {
    std::cout << "Single run (seed " << base.seed << ", " << base.stubs
              << " stubs)...\n";
    add_row("baseline", run_once(base));
  } else {
    std::cout << "Sweeping --" << base.sweep << " over " << base.steps
              << " settings (seed " << base.seed << ")...\n";
    for (std::size_t i = 0; i < base.steps; ++i) {
      const double value =
          base.steps == 1
              ? 0.0
              : static_cast<double>(i) / static_cast<double>(base.steps - 1);
      Options opts = base;
      if (base.sweep == "selective") {
        opts.selective = value;
      } else if (base.sweep == "multihome") {
        opts.multihome = 0.2 + 0.75 * value;  // degenerate worlds below 0.2
      } else if (base.sweep == "prepend") {
        opts.prepend = value;
      } else {
        std::cerr << "unknown sweep knob " << base.sweep << "\n";
        return 2;
      }
      add_row(base.sweep + " = " + util::fmt(base.sweep == "multihome"
                                                 ? 0.2 + 0.75 * value
                                                 : value,
                                             2),
              run_once(opts));
    }
  }
  std::cout << table.render("scenario_lab results") << "\n";
  std::cout << "Reading: SA prevalence tracks the selective-announcement "
               "rate (the paper's causal story); import typicality and "
               "inference accuracy stay high throughout.\n";
  return 0;
}
