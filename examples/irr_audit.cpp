// IRR audit: compare what ASes *register* in the routing registry against
// what they *do* — the staleness/incompleteness problem the paper raises in
// Section 3 ("the routing information stored in IRR is either incomplete or
// out-of-date").
//
// The audit cross-checks each registered import policy against the
// looking-glass observations: a neighbor whose registered RPSL pref class
// ordering contradicts the observed local-preference ordering is flagged.
//
//   $ irr_audit [seed]
#include <cstdlib>
#include <iostream>

#include "core/experiment.h"
#include "core/nexthop_consistency.h"
#include "rpsl/generator.h"
#include "util/text_table.h"

using namespace bgpolicy;

int main(int argc, char** argv) {
  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 7;
  core::Scenario scenario = core::Scenario::small(seed);
  // Exaggerate registry rot so the audit has something to find.
  scenario.irr_params.stale_prob = 0.35;
  scenario.irr_params.wrong_pref_prob = 0.10;

  std::cout << "Auditing the IRR against observed routing (seed " << seed
            << ")...\n";
  // The audit compares the registry against observed tables only — no
  // relationship inference needed, so the staged experiment stops at
  // Observe (stage selection skips the Infer/Analyze cost entirely).
  core::RunOptions options;
  options.until = core::Stage::kObserve;
  core::Experiment experiment(scenario, options);
  experiment.run();
  const core::GroundTruth& truth = experiment.truth();
  const sim::SimResult& sim = experiment.sim().sim;
  const core::Observations& observations = experiment.observations();

  std::size_t registered = 0;
  std::size_t stale = 0;
  for (const auto& aut_num : observations.irr_objects) {
    ++registered;
    if (aut_num.changed_date / 10000 < 2002) ++stale;
  }
  std::cout << "Registry: " << registered << " aut-num objects covering "
            << util::fmt(util::percent(registered, truth.topo.graph.as_count()), 1)
            << "% of ASs; " << stale
            << " stale (not touched during 2002 — the paper discards these)\n\n";

  // For each looking-glass vantage with a fresh aut-num: check every
  // registered import against the observed modal local preference.
  util::TextTable table({"AS", "registered imports", "checkable",
                         "contradicted", "verdict"});
  for (const auto vantage : experiment.sim().vantage.looking_glass) {
    const rpsl::AutNum* aut_num = observations.irr_for(vantage);
    if (aut_num == nullptr) {
      table.add_row({util::to_string(vantage), "-", "-", "-",
                     "NOT REGISTERED"});
      continue;
    }
    if (aut_num->changed_date / 10000 < 2002) {
      table.add_row({util::to_string(vantage),
                     std::to_string(aut_num->imports.size()), "-", "-",
                     "STALE"});
      continue;
    }

    // Observed: modal local-pref per neighbor from the looking glass.
    const auto observed =
        core::analyze_nexthop_consistency(sim.looking_glass.at(vantage));

    std::size_t checkable = 0;
    std::size_t contradicted = 0;
    for (const auto& lhs : aut_num->imports) {
      if (!lhs.pref) continue;
      const auto lhs_observed = observed.modal_pref.find(lhs.from);
      if (lhs_observed == observed.modal_pref.end()) continue;
      for (const auto& rhs : aut_num->imports) {
        if (!rhs.pref || rhs.from.value() <= lhs.from.value()) continue;
        const auto rhs_observed = observed.modal_pref.find(rhs.from);
        if (rhs_observed == observed.modal_pref.end()) continue;
        if (*lhs.pref == *rhs.pref ||
            lhs_observed->second == rhs_observed->second) {
          continue;  // ties carry no ordering information
        }
        ++checkable;
        // RPSL pref is inverted: smaller pref must mean larger LOCAL_PREF.
        const bool registered_prefers_lhs = *lhs.pref < *rhs.pref;
        const bool observed_prefers_lhs =
            lhs_observed->second > rhs_observed->second;
        if (registered_prefers_lhs != observed_prefers_lhs) ++contradicted;
      }
    }
    const double rate = util::percent(contradicted, checkable);
    table.add_row({util::to_string(vantage),
                   std::to_string(aut_num->imports.size()),
                   std::to_string(checkable), std::to_string(contradicted),
                   checkable == 0 ? "no signal"
                   : rate > 20.0  ? "OUT OF DATE"
                   : rate > 0.0   ? "minor drift"
                                  : "consistent"});
  }
  std::cout << table.render("IRR-vs-observed audit at the looking glasses")
            << "\n";
  std::cout << "Takeaway: the registry is a useful but unreliable source — "
               "exactly why the paper infers policies from routing tables "
               "instead of trusting the IRR.\n";
  return 0;
}
