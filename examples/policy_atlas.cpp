// Policy atlas: run the staged measurement experiment on a synthetic
// Internet and emit a per-vantage routing-policy report — the "global view
// of routing policies" the paper argues operators lack.
//
// The per-vantage numbers come straight from the Analyze stage's suite
// (one cached bundle per vantage); the io layer is demonstrated by dumping
// the collector table to a file and re-parsing it, and the report is
// mirrored to CSV.
//
//   $ policy_atlas [seed] [output-dir]
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>

#include "core/experiment.h"
#include "core/nexthop_consistency.h"
#include "io/table_dump.h"
#include "util/csv.h"
#include "util/text_table.h"

using namespace bgpolicy;

int main(int argc, char** argv) {
  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 2002;
  const std::filesystem::path out_dir =
      argc > 2 ? argv[2] : std::filesystem::temp_directory_path() / "bgpolicy";
  std::filesystem::create_directories(out_dir);

  core::Scenario scenario = core::Scenario::small(seed);
  std::cout << "Building the atlas (seed " << seed << ")...\n";
  core::Experiment experiment(scenario);
  experiment.run();  // Synthesize → ... → Analyze, all artifacts cached
  const sim::SimResult& sim = experiment.sim().sim;
  const core::InferenceProducts& inference = experiment.inference();
  const core::AnalysisSuite& analyses = experiment.analyses();

  // --- The atlas table -----------------------------------------------------
  util::TextTable atlas({"AS", "tier", "degree", "% typical import",
                         "% next-hop keyed", "customer prefixes", "% SA"});
  std::ofstream csv_file(out_dir / "atlas.csv");
  util::CsvWriter csv(csv_file);
  csv.write_row({"as", "tier", "degree", "typical_import_pct",
                 "nexthop_keyed_pct", "customer_prefixes", "sa_pct"});

  for (const auto vantage : experiment.sim().vantage.looking_glass) {
    const core::VantageAnalysis* bundle = analyses.find(vantage);
    if (bundle == nullptr || !bundle->import_typicality) continue;
    const auto nh =
        core::analyze_nexthop_consistency(sim.looking_glass.at(vantage));
    atlas.add_row({util::to_string(vantage),
                   std::to_string(inference.tiers.level_of(vantage)),
                   std::to_string(experiment.truth().topo.graph.degree(vantage)),
                   util::fmt(bundle->import_typicality->percent_typical, 1),
                   util::fmt(nh.percent_consistent, 1),
                   std::to_string(bundle->sa.customer_prefixes),
                   util::fmt(bundle->sa.percent_sa, 1)});
    csv.write_row({util::to_string(vantage),
                   std::to_string(inference.tiers.level_of(vantage)),
                   std::to_string(experiment.truth().topo.graph.degree(vantage)),
                   util::fmt(bundle->import_typicality->percent_typical, 2),
                   util::fmt(nh.percent_consistent, 2),
                   std::to_string(bundle->sa.customer_prefixes),
                   util::fmt(bundle->sa.percent_sa, 2)});
  }
  std::cout << atlas.render("Routing-policy atlas (one row per vantage)")
            << "\n";

  // --- Connectivity vs reachability ---------------------------------------
  // The paper's headline: selective announcement means the AS graph
  // overstates usable paths.  Count customer-prefix entries whose best
  // route at a Tier-1 "curves" through a peer although a customer path
  // exists in the connectivity graph.
  std::size_t curving = 0;
  std::size_t with_customer_path = 0;
  for (const auto as_value : core::Scenario::focus_tier1()) {
    const core::VantageAnalysis* bundle =
        analyses.find(util::AsNumber(as_value));
    if (bundle == nullptr) continue;
    with_customer_path += bundle->sa.customer_prefixes;
    curving += bundle->sa.sa_count;
  }
  std::cout << "Connectivity vs reachability: " << curving << " of "
            << with_customer_path
            << " customer-prefix entries at the focus Tier-1s are reached "
               "via peers despite a customer path in the AS graph ("
            << util::fmt(util::percent(curving, with_customer_path), 1)
            << "% fewer usable customer paths than connectivity suggests)\n\n";

  // --- io round trip -------------------------------------------------------
  const auto dump_path = out_dir / "collector.bgp";
  {
    std::ofstream dump_file(dump_path);
    io::dump_table(sim.collector, dump_file);
  }
  std::ifstream dump_file(dump_path);
  std::string text((std::istreambuf_iterator<char>(dump_file)),
                   std::istreambuf_iterator<char>());
  const auto reloaded = io::parse_table(text);
  std::cout << "Collector table dumped to " << dump_path << " ("
            << std::filesystem::file_size(dump_path) / 1024
            << " KiB) and re-parsed: " << reloaded.route_count()
            << " routes (original " << sim.collector.route_count()
            << ")\n";
  std::cout << "Atlas CSV written to " << (out_dir / "atlas.csv") << "\n";
  return 0;
}
