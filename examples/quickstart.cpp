// Quickstart: run the full pipeline on a small synthetic Internet and print
// the headline findings of the paper — import-policy typicality, the
// SA-prefix shares at the Tier-1 vantages, and relationship-inference
// accuracy against ground truth.
//
//   $ quickstart [seed]
#include <cstdlib>
#include <iostream>

#include "core/export_inference.h"
#include "core/import_inference.h"
#include "core/pipeline.h"
#include "util/text_table.h"

int main(int argc, char** argv) {
  using namespace bgpolicy;

  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;
  const core::Scenario scenario = core::Scenario::small(seed);

  std::cout << "Running scenario '" << scenario.name << "' (seed " << seed
            << ")...\n";
  const core::Pipeline pipe = core::run_pipeline(scenario);

  std::cout << "Simulated " << pipe.topo.graph.as_count() << " ASs, "
            << pipe.topo.graph.edge_count() << " edges, "
            << pipe.originations.size() << " originated prefixes ("
            << pipe.sim.unconverged_prefixes << " unconverged)\n";
  std::cout << "Collector table: " << pipe.sim.collector.prefix_count()
            << " prefixes, " << pipe.sim.collector.route_count()
            << " routes from " << pipe.vantage.collector_peers.size()
            << " peers\n";
  std::cout << "Relationship inference accuracy vs ground truth: "
            << util::fmt(100.0 * pipe.inferred.accuracy_against(pipe.topo.graph), 2)
            << "% over " << pipe.inferred.edge_count() << " classified pairs\n\n";

  // Import typicality at every looking glass (Table 2 flavor).
  util::TextTable import_table({"AS", "tier", "% typical local-pref"});
  for (const auto vantage : pipe.vantage.looking_glass) {
    const auto result = core::analyze_import_typicality(
        pipe.sim.looking_glass.at(vantage), pipe.inferred_oracle());
    import_table.add_row({util::to_string(vantage),
                          std::to_string(pipe.tiers.level_of(vantage)),
                          util::fmt(result.percent_typical, 2)});
  }
  std::cout << import_table.render("Import policies (typical local-pref)");

  // SA prefixes at the focus Tier-1s (Table 5 flavor).
  util::TextTable sa_table({"AS", "customer prefixes", "SA prefixes", "% SA"});
  for (const std::uint32_t as : core::Scenario::focus_tier1()) {
    const util::AsNumber vantage{as};
    if (!pipe.has_table(vantage)) continue;
    const auto analysis =
        core::infer_sa_prefixes(pipe.table_for(vantage), vantage,
                                pipe.inferred_graph, pipe.inferred_oracle());
    sa_table.add_row({util::to_string(vantage),
                      std::to_string(analysis.customer_prefixes),
                      std::to_string(analysis.sa_count),
                      util::fmt(analysis.percent_sa, 1)});
  }
  std::cout << "\n"
            << sa_table.render("Selectively announced (SA) prefixes");
  std::cout << "\nDone. See bench/ for the full per-table reproductions.\n";
  return 0;
}
