// Quickstart: run the staged experiment on a small synthetic Internet and
// print the headline findings of the paper — import-policy typicality, the
// SA-prefix shares at the Tier-1 vantages, and relationship-inference
// accuracy against ground truth.
//
// The staged API runs Synthesize → Simulate → Observe → Infer → Analyze
// with each artifact cached on the Experiment; the Analyze stage bundles
// every per-table analysis the tables below read from.
//
//   $ quickstart [seed]
#include <cstdlib>
#include <iostream>

#include "core/experiment.h"
#include "util/text_table.h"

int main(int argc, char** argv) {
  using namespace bgpolicy;

  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;
  core::Experiment experiment(core::Scenario::small(seed));

  std::cout << "Running scenario '" << experiment.scenario().name
            << "' (seed " << seed << ")...\n";
  experiment.run();  // all five stages; artifacts stay cached on the object

  const core::GroundTruth& truth = experiment.truth();
  const sim::SimResult& sim = experiment.sim().sim;
  const core::InferenceProducts& inference = experiment.inference();
  const core::AnalysisSuite& analyses = experiment.analyses();

  std::cout << "Simulated " << truth.topo.graph.as_count() << " ASs, "
            << truth.topo.graph.edge_count() << " edges, "
            << truth.originations.size() << " originated prefixes ("
            << sim.unconverged_prefixes << " unconverged)\n";
  std::cout << "Collector table: " << sim.collector.prefix_count()
            << " prefixes, " << sim.collector.route_count()
            << " routes from "
            << experiment.sim().vantage.collector_peers.size() << " peers\n";
  std::cout << "Relationship inference accuracy vs ground truth: "
            << util::fmt(
                   100.0 * inference.inferred.accuracy_against(truth.topo.graph),
                   2)
            << "% over " << inference.inferred.edge_count()
            << " classified pairs\n\n";

  // Import typicality at every looking glass (Table 2 flavor).
  util::TextTable import_table({"AS", "tier", "% typical local-pref"});
  for (const auto vantage : experiment.sim().vantage.looking_glass) {
    const core::VantageAnalysis* bundle = analyses.find(vantage);
    if (bundle == nullptr || !bundle->import_typicality) continue;
    import_table.add_row(
        {util::to_string(vantage),
         std::to_string(inference.tiers.level_of(vantage)),
         util::fmt(bundle->import_typicality->percent_typical, 2)});
  }
  std::cout << import_table.render("Import policies (typical local-pref)");

  // SA prefixes at the focus Tier-1s (Table 5 flavor).
  util::TextTable sa_table({"AS", "customer prefixes", "SA prefixes", "% SA"});
  for (const std::uint32_t as : core::Scenario::focus_tier1()) {
    const core::VantageAnalysis* bundle = analyses.find(util::AsNumber(as));
    if (bundle == nullptr) continue;
    sa_table.add_row({util::to_string(util::AsNumber(as)),
                      std::to_string(bundle->sa.customer_prefixes),
                      std::to_string(bundle->sa.sa_count),
                      util::fmt(bundle->sa.percent_sa, 1)});
  }
  std::cout << "\n"
            << sa_table.render("Selectively announced (SA) prefixes");
  std::cout << "\nDone. Try examples/scenario_lab for cached-artifact "
               "sweeps, and bench/ for the full per-table reproductions.\n";
  return 0;
}
