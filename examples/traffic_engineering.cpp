// Traffic engineering with selective announcement — the scenario the
// paper's introduction motivates.
//
// A multihomed stub (the paper's Fig. 3 "customer A") buys transit from two
// providers and wants inbound traffic for one prefix pinned to one link.
// This example builds the topology by hand, runs the propagation engine
// under three export policies, and shows:
//   * where every remote AS routes the prefix (which provider carries it),
//   * the "curving route" at the far provider's provider (a peer route to
//     its own indirect customer — an SA prefix),
//   * the community-capped variant (announce to B, but no further).
//
//   $ traffic_engineering
#include <iostream>

#include "bgp/decision.h"
#include "core/export_inference.h"
#include "sim/propagation.h"
#include "util/text_table.h"

using namespace bgpolicy;
using util::AsNumber;

namespace {

struct World {
  topo::AsGraph graph;
  // The paper's Fig. 3 cast.
  AsNumber a{64512};  // the multihomed customer
  AsNumber b{64513};  // provider B (primary link)
  AsNumber c{64514};  // provider C (backup link)
  AsNumber d{64515};  // B's Tier-1 provider
  AsNumber e{64516};  // C's Tier-1 provider, peer of D
  AsNumber remote{64517};  // a remote customer of D (traffic source)
};

World make_world() {
  World w;
  for (const auto as : {w.a, w.b, w.c, w.d, w.e, w.remote}) w.graph.add_as(as);
  w.graph.add_provider_customer(w.b, w.a);
  w.graph.add_provider_customer(w.c, w.a);
  w.graph.add_provider_customer(w.d, w.b);
  w.graph.add_provider_customer(w.e, w.c);
  w.graph.add_provider_customer(w.d, w.remote);
  w.graph.add_peer_peer(w.d, w.e);
  return w;
}

const char* name_of(const World& w, AsNumber as) {
  if (as == w.a) return "customer-A";
  if (as == w.b) return "provider-B";
  if (as == w.c) return "provider-C";
  if (as == w.d) return "tier1-D";
  if (as == w.e) return "tier1-E";
  if (as == w.remote) return "remote";
  return "?";
}

void show_routing(const World& w, const sim::PolicySet& policies,
                  const bgp::Prefix& prefix, const std::string& title) {
  const sim::PropagationEngine engine(w.graph, policies);
  const auto state = engine.propagate({prefix, w.a});

  util::TextTable table({"AS", "route to 203.0.113.0/24 (AS path)",
                         "learned from", "relationship"});
  for (const auto as : w.graph.ases()) {
    const bgp::Route* best = state.best_at(as);
    if (best == nullptr) {
      table.add_row({name_of(w, as), "(unreachable)", "-", "-"});
      continue;
    }
    if (best->self_originated()) continue;
    const auto rel = w.graph.relationship(as, best->learned_from);
    table.add_row({name_of(w, as), best->path.to_string(),
                   name_of(w, best->learned_from),
                   rel ? topo::to_string(*rel) : "-"});
  }
  std::cout << table.render(title) << "\n";

  // Is the prefix an SA prefix from tier1-D's point of view?
  bgp::BgpTable d_table{w.d};
  if (const bgp::Route* at_d = state.best_at(w.d)) d_table.add(*at_d);
  const auto analysis = core::infer_sa_prefixes(
      d_table, w.d, w.graph, core::oracle_from(w.graph));
  std::cout << "  tier1-D: " << analysis.sa_count
            << " SA prefix(es) among its customers' prefixes"
            << (analysis.sa_count > 0
                    ? "  <-- D reaches its own indirect customer via a peer"
                    : "")
            << "\n\n";
}

}  // namespace

int main() {
  const World w = make_world();
  const bgp::Prefix prefix = bgp::Prefix::parse("203.0.113.0/24");

  std::cout << "Topology: customer-A multihomed to provider-B and "
               "provider-C;\n  B sits under tier1-D, C under tier1-E; "
               "D and E peer; `remote` is D's customer.\n\n";

  // 1. Announce everywhere: inbound load is shared; D uses its customer path.
  {
    sim::PolicySet policies;
    for (const auto as : w.graph.ases()) policies.by_as.emplace(as, sim::AsPolicy{});
    show_routing(w, policies, prefix,
                 "1) announce to both providers (no traffic engineering)");
  }

  // 2. Withhold from B: all inbound traffic enters via C.  D now reaches
  //    its indirect customer A via its PEER E — the paper's curving route.
  {
    sim::PolicySet policies;
    for (const auto as : w.graph.ases()) policies.by_as.emplace(as, sim::AsPolicy{});
    sim::ExportRule rule;
    rule.prefix = prefix;
    rule.action = sim::ExportAction::kDeny;
    policies.at_mut(w.a).export_.add_rule_for(w.b, rule);
    show_routing(w, policies, prefix,
                 "2) withhold from provider-B (pin inbound to the C link)");
  }

  // 3. Community-capped: announce to B tagged "do not export upstream".
  //    B itself keeps a customer route (local traffic stays direct), but D
  //    still sees the prefix only via E.
  {
    sim::PolicySet policies;
    for (const auto as : w.graph.ases()) policies.by_as.emplace(as, sim::AsPolicy{});
    sim::ExportRule rule;
    rule.prefix = prefix;
    rule.action = sim::ExportAction::kTagNoExportUpstream;
    policies.at_mut(w.a).export_.add_rule_for(w.b, rule);
    show_routing(w, policies, prefix,
                 "3) announce to B with a no-export-upstream community");
  }

  std::cout << "Takeaway (paper Section 5.1): selective announcement gives\n"
               "the customer inbound control, but creates SA prefixes — the\n"
               "provider loses its customer path and 'curves' through peers,\n"
               "and the Internet has fewer usable paths than the AS graph\n"
               "suggests.\n";
  return 0;
}
